package shed

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/qos"
)

// graphs for the planner tests: gold is worth 1.0 per prompt tuple, bulk
// only 0.2.
var (
	goldGraph = qos.MustGraph(qos.Point{Latency: 5, Utility: 1}, qos.Point{Latency: 50, Utility: 0})
	bulkGraph = qos.MustGraph(qos.Point{Latency: 5, Utility: 0.2}, qos.Point{Latency: 50, Utility: 0})
)

func TestUtilitySlopeShedsCheapestFirst(t *testing.T) {
	queries := []Query{
		{Name: "gold", Graph: goldGraph, Rate: 10, CostPerTuple: 1}, // slope 1.0, sheddable 10
		{Name: "bulk", Graph: bulkGraph, Rate: 10, CostPerTuple: 8}, // slope 0.025, sheddable 80
	}
	drops := UtilitySlope{}.Plan(40, queries)
	if len(drops) != 1 {
		t.Fatalf("drops = %v, want only bulk", drops)
	}
	d := drops[0]
	if d.Query != "bulk" {
		t.Fatalf("shed %q first, want bulk", d.Query)
	}
	if math.Abs(d.Ratio-0.5) > 1e-12 {
		t.Fatalf("bulk ratio = %g, want 0.5", d.Ratio)
	}
	if math.Abs(d.LoadShed-40) > 1e-12 {
		t.Fatalf("LoadShed = %g, want 40", d.LoadShed)
	}
	if d.UtilityPerTuple != 0.2 {
		t.Fatalf("UtilityPerTuple = %g, want 0.2", d.UtilityPerTuple)
	}
}

func TestUtilitySlopeSpillsToNextQuery(t *testing.T) {
	queries := []Query{
		{Name: "gold", Graph: goldGraph, Rate: 10, CostPerTuple: 1},
		{Name: "bulk", Graph: bulkGraph, Rate: 10, CostPerTuple: 8},
	}
	// Excess beyond bulk's 80: bulk drops everything, gold covers the rest.
	drops := UtilitySlope{}.Plan(85, queries)
	if len(drops) != 2 {
		t.Fatalf("drops = %v, want bulk then gold", drops)
	}
	if drops[0].Query != "bulk" || drops[0].Ratio != 1 {
		t.Fatalf("first drop = %v, want bulk at ratio 1", drops[0])
	}
	if drops[1].Query != "gold" || math.Abs(drops[1].Ratio-0.5) > 1e-12 {
		t.Fatalf("second drop = %v, want gold at ratio 0.5", drops[1])
	}
}

func TestUtilitySlopeNoExcess(t *testing.T) {
	if drops := (UtilitySlope{}).Plan(0, []Query{{Name: "q", Rate: 1, CostPerTuple: 1}}); drops != nil {
		t.Fatalf("drops = %v, want none", drops)
	}
}

func TestRandomSpreadsUniformly(t *testing.T) {
	queries := []Query{
		{Name: "gold", Graph: goldGraph, Rate: 10, CostPerTuple: 1},
		{Name: "bulk", Graph: bulkGraph, Rate: 10, CostPerTuple: 8},
	}
	drops := Random{}.Plan(45, queries) // total sheddable 90 -> ratio 0.5 each
	if len(drops) != 2 {
		t.Fatalf("drops = %v, want both queries", drops)
	}
	for _, d := range drops {
		if math.Abs(d.Ratio-0.5) > 1e-12 {
			t.Fatalf("%s ratio = %g, want 0.5", d.Query, d.Ratio)
		}
	}
	// Over-capacity excess clamps at dropping everything.
	for _, d := range (Random{}).Plan(1000, queries) {
		if d.Ratio != 1 {
			t.Fatalf("%s ratio = %g, want 1", d.Query, d.Ratio)
		}
	}
}

func TestShedderUpdateAndNodePolicy(t *testing.T) {
	s := New(UtilitySlope{})
	if s.Generation() != 0 {
		t.Fatalf("fresh generation = %d", s.Generation())
	}
	queries := []Query{
		{Name: "gold", Graph: goldGraph, Rate: 10, CostPerTuple: 1},
		{Name: "bulk", Graph: bulkGraph, Rate: 10, CostPerTuple: 8},
	}
	drops := s.Update(50, 90, queries) // excess 40 -> bulk at 0.5
	if len(drops) != 1 || s.Generation() != 1 {
		t.Fatalf("drops %v generation %d", drops, s.Generation())
	}
	if ratio, util := s.NodePolicy([]string{"bulk"}); ratio != 0.5 || util != 0.2 {
		t.Fatalf("bulk policy = %g, %g", ratio, util)
	}
	if ratio, _ := s.NodePolicy([]string{"gold"}); ratio != 0 {
		t.Fatalf("gold ratio = %g, want 0", ratio)
	}
	// A shared operator sheds at the most protected owner's ratio: gold is
	// not shed, so the shared node must not shed either.
	if ratio, _ := s.NodePolicy([]string{"bulk", "gold"}); ratio != 0 {
		t.Fatalf("shared ratio = %g, want 0", ratio)
	}
	if ratio, _ := s.NodePolicy(nil); ratio != 0 {
		t.Fatalf("ownerless ratio = %g, want 0", ratio)
	}
	// Load fits again: the plan clears and the generation still moves so
	// executors drop their cached ratios.
	if drops := s.Update(50, 40, queries); len(drops) != 0 {
		t.Fatalf("drops = %v, want none", drops)
	}
	if s.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", s.Generation())
	}
	if ratio, _ := s.NodePolicy([]string{"bulk"}); ratio != 0 {
		t.Fatalf("bulk ratio after clear = %g, want 0", ratio)
	}
}

func TestShedderHeadroom(t *testing.T) {
	s := NewWithHeadroom(UtilitySlope{}, 0.5)
	queries := []Query{{Name: "q", Graph: goldGraph, Rate: 10, CostPerTuple: 1}}
	// Offered 8 exceeds 10*0.5: sheds even though raw capacity would fit.
	if drops := s.Update(10, 8, queries); len(drops) != 1 {
		t.Fatalf("drops = %v, want one", drops)
	}
}

func TestQueriesFromLoads(t *testing.T) {
	loads := []engine.NodeLoad{
		{ID: 0, Name: "sel", Tuples: 1000, Load: 4, OfferedLoad: 4, Owners: []string{"bulk", "gold"}},
		{ID: 1, Name: "agg", Tuples: 500, Load: 2, OfferedLoad: 2, Owners: []string{"gold"}},
	}
	graphs := map[string]*qos.Graph{"gold": goldGraph, "bulk": bulkGraph}
	queries := QueriesFromLoads(loads, graphs, 100)
	if len(queries) != 2 {
		t.Fatalf("queries = %v", queries)
	}
	// Sorted by name: bulk then gold.
	bulk, gold := queries[0], queries[1]
	if bulk.Name != "bulk" || gold.Name != "gold" {
		t.Fatalf("order = %s, %s", bulk.Name, gold.Name)
	}
	// Rates: both queries' ingress is the 1000-tuple selector at 10/tick.
	if bulk.Rate != 10 || gold.Rate != 10 {
		t.Fatalf("rates = %g, %g, want 10", bulk.Rate, gold.Rate)
	}
	// bulk owns only sel: 4 load / 10 rate. gold owns sel+agg: 6 / 10.
	if math.Abs(bulk.CostPerTuple-0.4) > 1e-12 || math.Abs(gold.CostPerTuple-0.6) > 1e-12 {
		t.Fatalf("costs = %g, %g", bulk.CostPerTuple, gold.CostPerTuple)
	}
	if bulk.UtilityPerTuple() != 0.2 || gold.UtilityPerTuple() != 1 {
		t.Fatalf("weights = %g, %g", bulk.UtilityPerTuple(), gold.UtilityPerTuple())
	}
	if got := OfferedLoad(loads); got != 6 {
		t.Fatalf("OfferedLoad = %g, want 6", got)
	}
	if got := ExecutedLoad(loads); got != 6 {
		t.Fatalf("ExecutedLoad = %g, want 6", got)
	}
}

// TestQueriesFromLoadsCountsShedDemand: shed tuples stay in the planner's
// view — a 100%-shed query must not look free next period, or the plan
// would clear and the overload return (the oscillation bug).
func TestQueriesFromLoadsCountsShedDemand(t *testing.T) {
	loads := []engine.NodeLoad{
		// All 1000 offered tuples were shed: zero executed load, full
		// offered load.
		{ID: 0, Name: "sel", Tuples: 0, ShedTuples: 1000, Load: 0, OfferedLoad: 4, Owners: []string{"bulk"}},
	}
	queries := QueriesFromLoads(loads, map[string]*qos.Graph{"bulk": bulkGraph}, 100)
	if len(queries) != 1 {
		t.Fatalf("queries = %v", queries)
	}
	q := queries[0]
	if q.Rate != 10 {
		t.Fatalf("Rate = %g, want 10 (shed tuples count as demand)", q.Rate)
	}
	if math.Abs(q.CostPerTuple-0.4) > 1e-12 {
		t.Fatalf("CostPerTuple = %g, want 0.4", q.CostPerTuple)
	}
	if got := OfferedLoad(loads); got != 4 {
		t.Fatalf("OfferedLoad = %g, want 4", got)
	}
	if got := ExecutedLoad(loads); got != 0 {
		t.Fatalf("ExecutedLoad = %g, want 0", got)
	}
}

// TestNodePolicyChargesUnshedOwners: overflow drops are billed the owners'
// real utility even when the plan does not shed them.
func TestNodePolicyChargesUnshedOwners(t *testing.T) {
	s := New(UtilitySlope{})
	queries := []Query{
		{Name: "gold", Graph: goldGraph, Rate: 10, CostPerTuple: 1},
		{Name: "bulk", Graph: bulkGraph, Rate: 10, CostPerTuple: 8},
	}
	// Load fits: empty plan, but weights are known.
	s.Update(1000, 90, queries)
	ratio, util := s.NodePolicy([]string{"gold"})
	if ratio != 0 {
		t.Fatalf("ratio = %g, want 0", ratio)
	}
	if util != 1 {
		t.Fatalf("utility charge for unshed gold = %g, want 1", util)
	}
	if _, util := s.NodePolicy([]string{"gold", "bulk"}); util != 1.2 {
		t.Fatalf("shared utility charge = %g, want 1.2", util)
	}
}

func TestQueryWithoutGraphShedsFirst(t *testing.T) {
	queries := []Query{
		{Name: "anon", Graph: nil, Rate: 10, CostPerTuple: 1},
		{Name: "gold", Graph: goldGraph, Rate: 10, CostPerTuple: 1},
	}
	drops := UtilitySlope{}.Plan(5, queries)
	if len(drops) != 1 || drops[0].Query != "anon" {
		t.Fatalf("drops = %v, want anon only", drops)
	}
}
