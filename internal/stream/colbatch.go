package stream

import "fmt"

// ColBatch is a schema-typed struct-of-arrays batch: one []int64 timestamp
// column plus one typed column per schema field. It is the unit of execution
// on the engine's fused columnar path — a Filter or Map kernel touches one
// contiguous typed slice per field instead of chasing a boxed-any pointer
// per value, which is what removes the row layout's per-field allocation and
// type-assertion cost.
//
// Punctuation is carried out-of-band: a ColBatch never interleaves markers
// with rows. Ingress folds any in-band markers into the batch watermark
// (SetWatermark), and the boundary conversion back to rows re-emits the
// watermark as one trailing NewPunctuation marker. Folding a marker to the
// end of its batch is always sound — a punctuation is a promise about future
// tuples, so delaying it only delays liveness, never correctness.
//
// Ownership follows the engine's single-owner batch contract: exactly one
// goroutine owns a ColBatch at a time, and the owner either hands it
// downstream or returns it to the pool. Columns must never be retained
// past the hand-off.
type ColBatch struct {
	schema *Schema
	// layout is the physical column layout the batch was built with; it
	// outlives Invalidate so a pooled batch can re-bind to any schema of
	// the same layout.
	layout string
	ts     []int64
	ints   [][]int64
	floats [][]float64
	strs   [][]string
	bools  [][]bool
	// colOf[i] indexes field i's column inside its kind-specific slice-of
	// -slices above.
	colOf []int
	// sel is reusable selection-vector scratch for filter kernels.
	sel []int32
	// wm is the out-of-band watermark folded from in-band punctuation;
	// hasWM records whether one was observed.
	wm    int64
	hasWM bool
}

// NewColBatch builds an empty columnar batch for the schema with capacity
// for capHint rows per column.
func NewColBatch(schema *Schema, capHint int) *ColBatch {
	if capHint < 0 {
		capHint = 0
	}
	b := &ColBatch{schema: schema, layout: schema.Layout(), ts: make([]int64, 0, capHint)}
	b.buildCols(capHint)
	return b
}

// buildCols allocates one typed column per schema field.
func (b *ColBatch) buildCols(capHint int) {
	n := b.schema.NumFields()
	b.colOf = make([]int, n)
	b.ints, b.floats, b.strs, b.bools = nil, nil, nil, nil
	for i := 0; i < n; i++ {
		switch b.schema.Field(i).Kind {
		case KindInt:
			b.colOf[i] = len(b.ints)
			b.ints = append(b.ints, make([]int64, 0, capHint))
		case KindFloat:
			b.colOf[i] = len(b.floats)
			b.floats = append(b.floats, make([]float64, 0, capHint))
		case KindString:
			b.colOf[i] = len(b.strs)
			b.strs = append(b.strs, make([]string, 0, capHint))
		case KindBool:
			b.colOf[i] = len(b.bools)
			b.bools = append(b.bools, make([]bool, 0, capHint))
		}
	}
}

// Schema returns the batch's schema.
func (b *ColBatch) Schema() *Schema { return b.schema }

// Layout returns the batch's physical column layout (see Schema.Layout).
func (b *ColBatch) Layout() string { return b.layout }

// Len returns the number of rows.
func (b *ColBatch) Len() int { return len(b.ts) }

// Ts returns the timestamp column.
func (b *ColBatch) Ts() []int64 { return b.ts }

// Ints returns field i's column; the field must be KindInt.
func (b *ColBatch) Ints(i int) []int64 { return b.ints[b.colOf[i]] }

// Floats returns field i's column; the field must be KindFloat.
func (b *ColBatch) Floats(i int) []float64 { return b.floats[b.colOf[i]] }

// Strs returns field i's column; the field must be KindString.
func (b *ColBatch) Strs(i int) []string { return b.strs[b.colOf[i]] }

// Bools returns field i's column; the field must be KindBool.
func (b *ColBatch) Bools(i int) []bool { return b.bools[b.colOf[i]] }

// SetWatermark folds a punctuation promise into the batch's out-of-band
// watermark, keeping the strongest (maximum) one.
func (b *ColBatch) SetWatermark(ts int64) {
	if !b.hasWM || ts > b.wm {
		b.wm = ts
		b.hasWM = true
	}
}

// Watermark returns the folded punctuation watermark, if any.
func (b *ColBatch) Watermark() (int64, bool) { return b.wm, b.hasWM }

// ClearWatermark drops the batch's watermark (used after the engine has
// re-emitted it in-band at a row boundary).
func (b *ColBatch) ClearWatermark() { b.wm, b.hasWM = 0, false }

// AppendTuple appends one row, converting from the boxed row layout. The
// caller must have validated conformance (plan ingress does); a kind
// mismatch panics like the Tuple accessors would. Punctuation markers must
// not be appended — fold them with SetWatermark instead.
func (b *ColBatch) AppendTuple(t Tuple) {
	if t.punct {
		panic("stream: punctuation appended to ColBatch; fold with SetWatermark")
	}
	b.ts = append(b.ts, t.Ts)
	for i := range b.colOf {
		c := b.colOf[i]
		switch b.schema.Field(i).Kind {
		case KindInt:
			b.ints[c] = append(b.ints[c], t.Vals[i].(int64))
		case KindFloat:
			// Same widening as Tuple.Float: schemas admit int64 values in
			// float fields, the typed column stores the widened value.
			switch v := t.Vals[i].(type) {
			case float64:
				b.floats[c] = append(b.floats[c], v)
			case int64:
				b.floats[c] = append(b.floats[c], float64(v))
			default:
				panic(fmt.Sprintf("stream: field %d is %T, not numeric", i, t.Vals[i]))
			}
		case KindString:
			b.strs[c] = append(b.strs[c], t.Vals[i].(string))
		case KindBool:
			b.bools[c] = append(b.bools[c], t.Vals[i].(bool))
		}
	}
}

// AppendTo converts the batch back to the boxed row layout, appending one
// Tuple per row to out. This is the boundary conversion cost: every scalar
// is boxed into an any. The watermark is NOT appended — the caller re-emits
// it in-band (NewPunctuation) after the rows if it needs to survive.
func (b *ColBatch) AppendTo(out []Tuple) []Tuple {
	n := b.schema.NumFields()
	for r := range b.ts {
		vals := make([]any, n)
		for i, c := range b.colOf {
			switch b.schema.Field(i).Kind {
			case KindInt:
				vals[i] = b.ints[c][r]
			case KindFloat:
				vals[i] = b.floats[c][r]
			case KindString:
				vals[i] = b.strs[c][r]
			case KindBool:
				vals[i] = b.bools[c][r]
			}
		}
		out = append(out, Tuple{Ts: b.ts[r], Vals: vals})
	}
	return out
}

// AppendCols bulk-appends every row of src (same layout required) onto b —
// the columnar clone/copy primitive. The watermark also folds over.
func (b *ColBatch) AppendCols(src *ColBatch) {
	if b.Layout() != src.Layout() {
		panic(fmt.Sprintf("stream: AppendCols layout mismatch %q vs %q", b.Layout(), src.Layout()))
	}
	b.ts = append(b.ts, src.ts...)
	for c := range b.ints {
		b.ints[c] = append(b.ints[c], src.ints[c]...)
	}
	for c := range b.floats {
		b.floats[c] = append(b.floats[c], src.floats[c]...)
	}
	for c := range b.strs {
		b.strs[c] = append(b.strs[c], src.strs[c]...)
	}
	for c := range b.bools {
		b.bools[c] = append(b.bools[c], src.bools[c]...)
	}
	if src.hasWM {
		b.SetWatermark(src.wm)
	}
}

// AppendRowFrom appends row r of src (same layout required) onto b without
// boxing — the typed single-row copy partition splits use.
func (b *ColBatch) AppendRowFrom(src *ColBatch, r int) {
	b.ts = append(b.ts, src.ts[r])
	for c := range b.ints {
		b.ints[c] = append(b.ints[c], src.ints[c][r])
	}
	for c := range b.floats {
		b.floats[c] = append(b.floats[c], src.floats[c][r])
	}
	for c := range b.strs {
		b.strs[c] = append(b.strs[c], src.strs[c][r])
	}
	for c := range b.bools {
		b.bools[c] = append(b.bools[c], src.bools[c][r])
	}
}

// Reset truncates every column and clears the watermark, keeping capacity.
// String columns are zeroed before truncation so recycled batches don't pin
// old string backing arrays live.
func (b *ColBatch) Reset() {
	b.ts = b.ts[:0]
	for c := range b.ints {
		b.ints[c] = b.ints[c][:0]
	}
	for c := range b.floats {
		b.floats[c] = b.floats[c][:0]
	}
	for c := range b.strs {
		s := b.strs[c]
		for i := range s {
			s[i] = ""
		}
		b.strs[c] = s[:0]
	}
	for c := range b.bools {
		b.bools[c] = b.bools[c][:0]
	}
	b.ClearWatermark()
}

// ResetFor rebinds a (possibly pooled, possibly Invalidate-d) batch to
// schema and truncates it. The layouts must match — pools class batches by
// layout, so a mismatch is a pool-keying bug, not a recoverable condition.
func (b *ColBatch) ResetFor(schema *Schema) {
	if b.layout != schema.Layout() {
		panic(fmt.Sprintf("stream: ResetFor layout mismatch: batch %q, schema %q", b.layout, schema.Layout()))
	}
	b.schema = schema
	b.Reset()
}

// AllSel returns the batch's reusable selection-vector scratch filled with
// every row index [0, Len). Filter kernels refine it in place.
func (b *ColBatch) AllSel() []int32 {
	n := len(b.ts)
	if cap(b.sel) < n {
		b.sel = make([]int32, n)
	}
	sel := b.sel[:n]
	for i := range sel {
		sel[i] = int32(i)
	}
	return sel
}

// Keep compacts the batch in place to exactly the rows named by sel, in sel
// order. sel must be strictly increasing row indices (the shape filter
// kernels produce), which makes the gather a forward scan — safe in place.
func (b *ColBatch) Keep(sel []int32) {
	if len(sel) == len(b.ts) {
		return
	}
	for i, r := range sel {
		b.ts[i] = b.ts[int(r)]
	}
	b.ts = b.ts[:len(sel)]
	for c := range b.ints {
		col := b.ints[c]
		for i, r := range sel {
			col[i] = col[int(r)]
		}
		b.ints[c] = col[:len(sel)]
	}
	for c := range b.floats {
		col := b.floats[c]
		for i, r := range sel {
			col[i] = col[int(r)]
		}
		b.floats[c] = col[:len(sel)]
	}
	for c := range b.strs {
		col := b.strs[c]
		for i, r := range sel {
			col[i] = col[int(r)]
		}
		// Zero the dropped tail so the column doesn't pin dead strings.
		for i := len(sel); i < len(col); i++ {
			col[i] = ""
		}
		b.strs[c] = col[:len(sel)]
	}
	for c := range b.bools {
		col := b.bools[c]
		for i, r := range sel {
			col[i] = col[int(r)]
		}
		b.bools[c] = col[:len(sel)]
	}
}

// Invalidate poisons the batch after it returns to a pool: the schema is
// cleared (so any later schema-dependent access through a stale reference
// panics with a nil dereference instead of silently corrupting the next
// lease) and every row is truncated away. Column capacity is kept — the
// pool's next Get re-binds the schema via ResetFor. Only the engine's
// race-build pool guard calls this.
func (b *ColBatch) Invalidate() {
	b.Reset()
	b.schema = nil
}
