package stream

import "testing"

func TestPunctuationMarker(t *testing.T) {
	p := NewPunctuation(42)
	if !p.IsPunct() || p.Ts != 42 || len(p.Vals) != 0 {
		t.Fatalf("NewPunctuation(42) = %+v", p)
	}
	if c := p.Clone(); !c.IsPunct() || c.Ts != 42 {
		t.Fatalf("Clone dropped the punctuation flag: %+v", c)
	}
	if NewTuple(42, int64(1)).IsPunct() {
		t.Fatal("regular tuple reports IsPunct")
	}
}

func TestStatelessUnaryPunctuateForwards(t *testing.T) {
	for _, op := range []Punctuator{
		NewFilter("f", 1, FieldCmp(0, Gt, 0)),
		NewMap("m", 1, nil, func(t Tuple) []any { return t.Vals }),
		MustWindowAgg("w", 1, WindowSpec{Size: 3, Agg: AggCount, GroupBy: -1}),
	} {
		if got, ok := op.Punctuate(7); !ok || got != 7 {
			t.Errorf("%T.Punctuate(7) = %d,%v, want 7,true", op, got, ok)
		}
	}
}

// TestBinaryPunctuateMinAcrossSides: a binary operator can promise nothing
// until both inputs have punctuated, then only the minimum — the slower side
// can still trigger emissions at its own (older) timestamps — and the
// promise never regresses when a side re-punctuates lower.
func TestBinaryPunctuateMinAcrossSides(t *testing.T) {
	for _, op := range []BinaryPunctuator{
		NewUnion("u", 1),
		NewHashJoin("j", 1, 0, 0, 4),
	} {
		if _, ok := op.PunctuateSide(Left, 10); ok {
			t.Errorf("%T promised with only the left side punctuated", op)
		}
		if got, ok := op.PunctuateSide(Right, 4); !ok || got != 4 {
			t.Errorf("%T both-sides promise = %d,%v, want 4,true", op, got, ok)
		}
		if got, ok := op.PunctuateSide(Right, 20); !ok || got != 10 {
			t.Errorf("%T promise after right overtakes = %d,%v, want 10,true (left bound)", op, got, ok)
		}
		// A stale (lower) marker must not roll the watermark back.
		if got, ok := op.PunctuateSide(Left, 3); !ok || got != 10 {
			t.Errorf("%T promise after stale left marker = %d,%v, want 10,true", op, got, ok)
		}
	}
}

// TestWindowAggEmissionsRespectForwardedPunctuation is the soundness
// property behind WindowAgg forwarding the input promise unchanged despite
// open buffers below it: every MID-RUN emission after the punctuation
// carries a later arrival's timestamp, and only Flush (exempt by contract)
// may emit the buffered remainder below the watermark.
func TestWindowAggEmissionsRespectForwardedPunctuation(t *testing.T) {
	w := MustWindowAgg("w", 1, WindowSpec{Size: 3, Slide: 1, Agg: AggSum, Field: 1, GroupBy: 0})
	for ts := int64(1); ts <= 4; ts++ {
		w.Apply(NewTuple(ts, "k", 1.0)) // leaves open per-key state at ts <= 4
	}
	const punct = 4
	if got, ok := w.Punctuate(punct); !ok || got != punct {
		t.Fatalf("Punctuate(%d) = %d,%v", punct, got, ok)
	}
	for ts := int64(5); ts <= 12; ts++ {
		key := "k"
		if ts%2 == 0 {
			key = "k2" // a second group keeps sub-watermark buffers open
		}
		for _, out := range w.Apply(NewTuple(ts, key, 1.0)) {
			if out.Ts <= punct {
				t.Fatalf("mid-run emission at Ts %d below forwarded punctuation %d", out.Ts, punct)
			}
		}
	}
	// Flush drains whatever is open, old timestamps included — the exempt
	// path the engine orders separately at Stop.
	if flushed := w.Flush(); len(flushed) == 0 {
		t.Fatal("expected open state to flush")
	}
}
