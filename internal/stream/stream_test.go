package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func intTuple(ts int64, vals ...int64) Tuple {
	anyVals := make([]any, len(vals))
	for i, v := range vals {
		anyVals[i] = v
	}
	return Tuple{Ts: ts, Vals: anyVals}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Field{Name: "", Kind: KindInt}); err == nil {
		t.Error("want error for empty field name")
	}
	if _, err := NewSchema(Field{Name: "x", Kind: KindInt}, Field{Name: "x", Kind: KindFloat}); err == nil {
		t.Error("want error for duplicate field name")
	}
	s := MustSchema(Field{Name: "a", Kind: KindInt}, Field{Name: "b", Kind: KindString})
	if s.IndexOf("b") != 1 || s.IndexOf("missing") != -1 {
		t.Error("IndexOf misbehaves")
	}
	if s.String() != "(a:int, b:string)" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSchemaConforms(t *testing.T) {
	s := MustSchema(Field{Name: "a", Kind: KindInt}, Field{Name: "b", Kind: KindFloat}, Field{Name: "c", Kind: KindBool})
	good := NewTuple(1, int64(5), 2.5, true)
	if !s.Conforms(good) {
		t.Error("conforming tuple rejected")
	}
	// Ints widen to float fields.
	widened := NewTuple(1, int64(5), int64(2), false)
	if !s.Conforms(widened) {
		t.Error("int-for-float widening rejected")
	}
	if s.Conforms(NewTuple(1, int64(5), 2.5)) {
		t.Error("wrong arity accepted")
	}
	if s.Conforms(NewTuple(1, "x", 2.5, true)) {
		t.Error("wrong kind accepted")
	}
}

func TestTupleAccessors(t *testing.T) {
	tup := NewTuple(9, int64(3), 2.5, "hi", true)
	if tup.Int(0) != 3 || tup.Float(1) != 2.5 || tup.Str(2) != "hi" || !tup.Bool(3) {
		t.Error("accessors wrong")
	}
	if tup.Float(0) != 3 {
		t.Error("Float should widen int64")
	}
	clone := tup.Clone()
	clone.Vals[0] = int64(99)
	if tup.Int(0) != 3 {
		t.Error("Clone shares storage")
	}
}

func TestFilter(t *testing.T) {
	f := NewFilter("f", 1, FieldCmp(0, Gt, 10))
	if got := f.Apply(intTuple(1, 11)); len(got) != 1 {
		t.Error("11 > 10 should pass")
	}
	if got := f.Apply(intTuple(1, 10)); len(got) != 0 {
		t.Error("10 > 10 should not pass")
	}
	if f.Flush() != nil {
		t.Error("filters hold no state")
	}
	if f.Cost() != 1 {
		t.Error("cost wrong")
	}
}

func TestFieldCmpAllOps(t *testing.T) {
	cases := []struct {
		op   CmpOp
		v    int64
		want bool
	}{
		{Eq, 5, true}, {Eq, 4, false},
		{Ne, 4, true}, {Ne, 5, false},
		{Lt, 4, true}, {Lt, 5, false},
		{Le, 5, true}, {Le, 6, false},
		{Gt, 6, true}, {Gt, 5, false},
		{Ge, 5, true}, {Ge, 4, false},
	}
	for _, tc := range cases {
		pred := FieldCmp(0, tc.op, 5)
		if got := pred(intTuple(0, tc.v)); got != tc.want {
			t.Errorf("%d %s 5 = %v, want %v", tc.v, tc.op, got, tc.want)
		}
	}
}

func TestAndOrPredicates(t *testing.T) {
	hi := FieldCmp(0, Gt, 10)
	lo := FieldCmp(0, Lt, 20)
	if !And(hi, lo)(intTuple(0, 15)) || And(hi, lo)(intTuple(0, 25)) {
		t.Error("And misbehaves")
	}
	if !Or(hi, lo)(intTuple(0, 25)) || Or(FieldCmp(0, Gt, 30), FieldCmp(0, Lt, 1))(intTuple(0, 15)) {
		t.Error("Or misbehaves")
	}
}

func TestFieldEqString(t *testing.T) {
	pred := FieldEqString(0, "ACME")
	if !pred(NewTuple(0, "ACME")) || pred(NewTuple(0, "OTHER")) {
		t.Error("FieldEqString misbehaves")
	}
}

func TestMapAndProject(t *testing.T) {
	in := MustSchema(Field{Name: "a", Kind: KindInt}, Field{Name: "b", Kind: KindInt})
	double := NewMap("double", 1, in, func(t Tuple) []any {
		return []any{t.Int(0) * 2, t.Int(1)}
	})
	out := double.Apply(intTuple(7, 3, 4))
	if len(out) != 1 || out[0].Int(0) != 6 || out[0].Ts != 7 {
		t.Errorf("map output = %+v", out)
	}

	proj := NewProject("p", 1, in, 1)
	got := proj.Apply(intTuple(1, 3, 4))
	if len(got) != 1 || len(got[0].Vals) != 1 || got[0].Int(0) != 4 {
		t.Errorf("project output = %+v", got)
	}
	if proj.OutSchema(in).NumFields() != 1 || proj.OutSchema(in).Field(0).Name != "b" {
		t.Error("projected schema wrong")
	}
}

func TestTumblingWindowAggregates(t *testing.T) {
	cases := []struct {
		agg  AggKind
		want []float64
	}{
		{AggCount, []float64{3, 3}},
		{AggSum, []float64{6, 15}},
		{AggAvg, []float64{2, 5}},
		{AggMin, []float64{1, 4}},
		{AggMax, []float64{3, 6}},
	}
	for _, tc := range cases {
		w := MustWindowAgg(tc.agg.String(), 1, WindowSpec{Size: 3, Agg: tc.agg, Field: 0, GroupBy: -1})
		var got []float64
		for i := int64(1); i <= 6; i++ {
			for _, o := range w.Apply(intTuple(i, i)) {
				got = append(got, o.Float(1))
			}
		}
		if len(got) != len(tc.want) {
			t.Fatalf("%s: emitted %v, want %v", tc.agg, got, tc.want)
		}
		for i := range got {
			if math.Abs(got[i]-tc.want[i]) > 1e-9 {
				t.Fatalf("%s: emitted %v, want %v", tc.agg, got, tc.want)
			}
		}
	}
}

func TestSlidingWindow(t *testing.T) {
	w := MustWindowAgg("slide", 1, WindowSpec{Size: 3, Slide: 1, Agg: AggSum, Field: 0, GroupBy: -1})
	var got []float64
	for i := int64(1); i <= 5; i++ {
		for _, o := range w.Apply(intTuple(i, i)) {
			got = append(got, o.Float(1))
		}
	}
	want := []float64{6, 9, 12} // 1+2+3, 2+3+4, 3+4+5
	if len(got) != len(want) {
		t.Fatalf("sliding sums = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sliding sums = %v, want %v", got, want)
		}
	}
}

func TestGroupedWindow(t *testing.T) {
	w := MustWindowAgg("grouped", 1, WindowSpec{Size: 2, Agg: AggSum, Field: 1, GroupBy: 0})
	emit := func(key string, v int64) []Tuple {
		return w.Apply(NewTuple(0, key, v))
	}
	if out := emit("a", 1); len(out) != 0 {
		t.Fatal("window should not close yet")
	}
	if out := emit("b", 10); len(out) != 0 {
		t.Fatal("groups are independent")
	}
	out := emit("a", 2)
	if len(out) != 1 || out[0].Str(0) != "a" || out[0].Float(1) != 3 {
		t.Fatalf("group a result = %+v", out)
	}
	out = emit("b", 20)
	if len(out) != 1 || out[0].Float(1) != 30 {
		t.Fatalf("group b result = %+v", out)
	}
}

func TestWindowFlushEmitsPartials(t *testing.T) {
	w := MustWindowAgg("flush", 1, WindowSpec{Size: 5, Agg: AggCount, Field: 0, GroupBy: -1})
	w.Apply(intTuple(1, 1))
	w.Apply(intTuple(2, 2))
	out := w.Flush()
	if len(out) != 1 || out[0].Float(1) != 2 {
		t.Fatalf("flush = %+v, want partial count 2", out)
	}
	if len(w.Flush()) != 0 {
		t.Error("second flush should be empty")
	}
	if len(w.GroupKeys()) != 0 {
		t.Error("flush should clear group state")
	}
}

func TestWindowSpecValidation(t *testing.T) {
	if _, err := NewWindowAgg("w", 1, WindowSpec{Size: 0}); err == nil {
		t.Error("want error for zero size")
	}
	if _, err := NewWindowAgg("w", 1, WindowSpec{Size: 3, Slide: 4}); err == nil {
		t.Error("want error for slide > size")
	}
	if _, err := NewWindowAgg("w", 1, WindowSpec{Size: 3, Slide: -1}); err == nil {
		t.Error("want error for negative slide")
	}
}

func TestKahanSum(t *testing.T) {
	vals := make([]float64, 0, 10001)
	vals = append(vals, 1e16)
	for i := 0; i < 10000; i++ {
		vals = append(vals, 1)
	}
	if got := kahanSum(vals); got != 1e16+10000 {
		t.Errorf("kahanSum = %v, want %v", got, 1e16+10000)
	}
}

func TestHashJoin(t *testing.T) {
	j := NewHashJoin("j", 1, 0, 0, 4)
	if out := j.ApplyLeft(NewTuple(1, "k", 1.0)); len(out) != 0 {
		t.Fatal("no right side yet")
	}
	out := j.ApplyRight(NewTuple(2, "k", 2.0))
	if len(out) != 1 {
		t.Fatalf("join emitted %d, want 1", len(out))
	}
	// Output is left-then-right regardless of arrival side, timestamp is max.
	if out[0].Str(0) != "k" || out[0].Float(1) != 1.0 || out[0].Float(3) != 2.0 || out[0].Ts != 2 {
		t.Errorf("join tuple = %+v", out[0])
	}
	if out := j.ApplyRight(NewTuple(3, "other", 9.0)); len(out) != 0 {
		t.Error("non-matching key joined")
	}
}

func TestHashJoinWindowEviction(t *testing.T) {
	j := NewHashJoin("j", 1, 0, 0, 2)
	for i := int64(0); i < 5; i++ {
		j.ApplyLeft(NewTuple(i, "k", float64(i)))
	}
	// Window 2: only tuples 3 and 4 are retained.
	out := j.ApplyRight(NewTuple(10, "k", 100.0))
	if len(out) != 2 {
		t.Fatalf("join emitted %d, want 2 (window eviction)", len(out))
	}
	if j.StateSize() != 3 { // 2 left + 1 right
		t.Errorf("StateSize = %d, want 3", j.StateSize())
	}
	j.Flush()
	if j.StateSize() != 0 {
		t.Error("flush should clear join state")
	}
}

func TestJoinOutSchema(t *testing.T) {
	l := MustSchema(Field{Name: "sym", Kind: KindString}, Field{Name: "price", Kind: KindFloat})
	r := MustSchema(Field{Name: "sym", Kind: KindString})
	j := NewHashJoin("j", 1, 0, 0, 1)
	out := j.OutSchema(l, r)
	if out.NumFields() != 3 || out.Field(0).Name != "l_sym" || out.Field(2).Name != "r_sym" {
		t.Errorf("join schema = %s", out)
	}
}

func TestUnion(t *testing.T) {
	u := NewUnion("u", 1)
	if out := u.ApplyLeft(intTuple(1, 1)); len(out) != 1 {
		t.Error("left passthrough")
	}
	if out := u.ApplyRight(intTuple(2, 2)); len(out) != 1 {
		t.Error("right passthrough")
	}
	if u.Flush() != nil {
		t.Error("union holds no state")
	}
}

func TestPipelineGoroutines(t *testing.T) {
	// filter evens -> double -> tumbling sum of 2.
	in := MustSchema(Field{Name: "v", Kind: KindInt})
	pipe := NewPipeline(4,
		NewFilter("evens", 1, func(t Tuple) bool { return t.Int(0)%2 == 0 }),
		NewMap("double", 1, in, func(t Tuple) []any { return []any{t.Int(0) * 2} }),
		MustWindowAgg("sum2", 1, WindowSpec{Size: 2, Agg: AggSum, Field: 0, GroupBy: -1}),
	)
	src := Generate(10, func(i int) Tuple { return intTuple(int64(i), int64(i)) })
	got := Collect(pipe.Run(src))
	// Evens 0..8 doubled: 0,4,8,12,16 -> sums (0+4), (8+12), flush partial 16.
	want := []float64{4, 20, 16}
	if len(got) != len(want) {
		t.Fatalf("pipeline output = %+v, want sums %v", got, want)
	}
	for i := range want {
		if got[i].Float(1) != want[i] {
			t.Fatalf("pipeline output[%d] = %v, want %v", i, got[i].Float(1), want[i])
		}
	}
}

func TestJoinPipeline(t *testing.T) {
	left := SliceSource([]Tuple{NewTuple(1, "a", 1.0), NewTuple(2, "b", 2.0)})
	right := SliceSource([]Tuple{NewTuple(3, "a", 10.0), NewTuple(4, "b", 20.0)})
	out := Collect(JoinPipeline(NewHashJoin("j", 1, 0, 0, 8), left, right, 4))
	if len(out) != 2 {
		t.Fatalf("join pipeline emitted %d tuples, want 2", len(out))
	}
	// Arrival interleaving is nondeterministic; check the key pairs as a set.
	keys := map[string]bool{}
	for _, o := range out {
		keys[o.Str(0)] = true
	}
	if !keys["a"] || !keys["b"] {
		t.Errorf("joined keys = %v, want a and b", keys)
	}
}

func TestPipelinePropertyCountPreserved(t *testing.T) {
	// A pass-everything filter must preserve count and order.
	f := func(n uint8) bool {
		count := int(n%50) + 1
		pipe := NewPipeline(2, NewFilter("pass", 1, func(Tuple) bool { return true }))
		src := Generate(count, func(i int) Tuple { return intTuple(int64(i), int64(i)) })
		out := Collect(pipe.Run(src))
		if len(out) != count {
			return false
		}
		for i, o := range out {
			if o.Int(0) != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
