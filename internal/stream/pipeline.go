package stream

import (
	"sync"
)

// Pipeline runs a chain of unary transforms as a goroutine pipeline: one
// goroutine per stage connected by buffered channels, the natural Go shape
// for continuous-query dataflow. Closing the source drains every stage
// (Flush) in order and closes the output.
type Pipeline struct {
	stages []Transform
	buf    int
}

// NewPipeline builds a pipeline over the given stages with per-edge channel
// buffering buf (minimum 1).
func NewPipeline(buf int, stages ...Transform) *Pipeline {
	if buf < 1 {
		buf = 1
	}
	return &Pipeline{stages: append([]Transform(nil), stages...), buf: buf}
}

// Run wires the pipeline to the source channel and returns the output
// channel. It spawns one goroutine per stage; all exit once the source
// closes and their input drains.
func (p *Pipeline) Run(src <-chan Tuple) <-chan Tuple {
	in := src
	for _, stage := range p.stages {
		out := make(chan Tuple, p.buf)
		go func(t Transform, in <-chan Tuple, out chan<- Tuple) {
			defer close(out)
			for tup := range in {
				for _, o := range t.Apply(tup) {
					out <- o
				}
			}
			for _, o := range t.Flush() {
				out <- o
			}
		}(stage, in, out)
		in = out
	}
	return in
}

// RunBatches wires the pipeline over batch channels: every channel send
// carries a whole []Tuple, amortizing the per-send synchronization cost
// across the batch — the same batch-oriented dataflow the engine package's
// concurrent executors use. Each stage runs the transform over an input
// batch via BatchApply (operators implementing BatchTransform process the
// batch natively, with no per-tuple slice allocation) and forwards the
// outputs as one batch; batch ownership transfers with each send, so a stage
// that emits at most one tuple per input rewrites the arriving batch in
// place. Empty result batches are not forwarded. Closing the source drains
// every stage (Flush) in order: flushed tuples arrive as a final batch after
// all applied output, then the output channel closes.
func (p *Pipeline) RunBatches(src <-chan []Tuple) <-chan []Tuple {
	in := src
	for _, stage := range p.stages {
		out := make(chan []Tuple, p.buf)
		go func(t Transform, in <-chan []Tuple, out chan<- []Tuple) {
			defer close(out)
			_, inPlace := t.(BatchTransform)
			for batch := range in {
				var emitted []Tuple
				if inPlace {
					emitted = BatchApply(t, batch, batch[:0])
				} else {
					emitted = BatchApply(t, batch, make([]Tuple, 0, len(batch)))
				}
				if len(emitted) > 0 {
					out <- emitted
				}
			}
			if flushed := t.Flush(); len(flushed) > 0 {
				out <- flushed
			}
		}(stage, in, out)
		in = out
	}
	return in
}

// Batch groups a tuple channel into batches of at most size tuples,
// forwarding a partial batch when the source closes. It adapts per-tuple
// producers to the batch path.
func Batch(src <-chan Tuple, size int) <-chan []Tuple {
	if size < 1 {
		size = 1
	}
	out := make(chan []Tuple, 1)
	go func() {
		defer close(out)
		batch := make([]Tuple, 0, size)
		for t := range src {
			batch = append(batch, t)
			if len(batch) == size {
				out <- batch
				batch = make([]Tuple, 0, size)
			}
		}
		if len(batch) > 0 {
			out <- batch
		}
	}()
	return out
}

// Unbatch flattens a batch channel back into a tuple channel.
func Unbatch(src <-chan []Tuple) <-chan Tuple {
	out := make(chan Tuple, 64)
	go func() {
		defer close(out)
		for batch := range src {
			for _, t := range batch {
				out <- t
			}
		}
	}()
	return out
}

// Collect drains ch into a slice; convenience for tests and examples.
func Collect(ch <-chan Tuple) []Tuple {
	var out []Tuple
	for t := range ch {
		out = append(out, t)
	}
	return out
}

// SliceSource returns a closed-when-done channel emitting the given tuples
// in order.
func SliceSource(tuples []Tuple) <-chan Tuple {
	ch := make(chan Tuple, len(tuples))
	for _, t := range tuples {
		ch <- t
	}
	close(ch)
	return ch
}

// Generate emits n tuples produced by gen(i) on the returned channel.
func Generate(n int, gen func(i int) Tuple) <-chan Tuple {
	ch := make(chan Tuple, 64)
	go func() {
		defer close(ch)
		for i := 0; i < n; i++ {
			ch <- gen(i)
		}
	}()
	return ch
}

// JoinPipeline runs a binary transform fed by two source channels, merging
// arrivals fairly, and returns the output channel. It demonstrates the
// goroutine shape of a two-input continuous query; the deterministic engine
// package is used where reproducible interleaving matters.
func JoinPipeline(bt BinaryTransform, left, right <-chan Tuple, buf int) <-chan Tuple {
	if buf < 1 {
		buf = 1
	}
	type sided struct {
		t    Tuple
		side Side
	}
	merged := make(chan sided, buf)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for t := range left {
			merged <- sided{t, Left}
		}
	}()
	go func() {
		defer wg.Done()
		for t := range right {
			merged <- sided{t, Right}
		}
	}()
	go func() {
		wg.Wait()
		close(merged)
	}()

	out := make(chan Tuple, buf)
	go func() {
		defer close(out)
		for m := range merged {
			var emitted []Tuple
			if m.side == Left {
				emitted = bt.ApplyLeft(m.t)
			} else {
				emitted = bt.ApplyRight(m.t)
			}
			for _, o := range emitted {
				out <- o
			}
		}
		for _, o := range bt.Flush() {
			out <- o
		}
	}()
	return out
}
