package stream

import (
	"fmt"
	"math"
	"sort"
)

// AggKind enumerates the supported window aggregate functions.
type AggKind int

// Aggregate functions.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the aggregate's SQL-ish name.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", int(a))
	}
}

// WindowSpec describes a window aggregate: how many tuples per window, how
// far the window slides, which field is aggregated and (optionally) which
// field partitions the stream into groups. Size == Slide is a tumbling
// window; Slide < Size is sliding with overlap.
type WindowSpec struct {
	// Size is the window length in tuples (per group when grouped).
	Size int
	// Slide is the number of tuples between window emissions; defaults to
	// Size (tumbling) when zero.
	Slide int
	// Agg is the aggregate function.
	Agg AggKind
	// Field is the aggregated field position (ignored for AggCount).
	Field int
	// GroupBy is the grouping field position, or -1 for a single group.
	GroupBy int
}

// normalize fills defaults and validates the spec.
func (s WindowSpec) normalize() (WindowSpec, error) {
	if s.Size <= 0 {
		return s, fmt.Errorf("stream: window size must be positive, got %d", s.Size)
	}
	if s.Slide == 0 {
		s.Slide = s.Size
	}
	if s.Slide < 0 || s.Slide > s.Size {
		return s, fmt.Errorf("stream: slide %d must be in (0, size %d]", s.Slide, s.Size)
	}
	return s, nil
}

// WindowAgg is a count-based (tumbling or sliding) window aggregate,
// optionally grouped by a key field. Output tuples carry the group key (or
// int64(0) when ungrouped) and the aggregate value, timestamped with the
// last contributing tuple's timestamp.
type WindowAgg struct {
	name   string
	spec   WindowSpec
	cost   float64
	groups map[any]*windowState
	order  []any // deterministic flush order: first-seen group order
}

type windowState struct {
	buf []float64 // retained values (or 1s for count)
	ts  int64
}

// NewWindowAgg builds a window aggregate operator. It returns an error for
// invalid specs.
func NewWindowAgg(name string, cost float64, spec WindowSpec) (*WindowAgg, error) {
	norm, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	return &WindowAgg{
		name:   name,
		spec:   norm,
		cost:   cost,
		groups: make(map[any]*windowState),
	}, nil
}

// MustWindowAgg is NewWindowAgg that panics on error, for fixtures.
func MustWindowAgg(name string, cost float64, spec WindowSpec) *WindowAgg {
	w, err := NewWindowAgg(name, cost, spec)
	if err != nil {
		panic(err)
	}
	return w
}

// Name implements Transform.
func (w *WindowAgg) Name() string { return w.name }

// PartitionField implements PartitionKeyer: grouped windows keep state per
// GroupBy value; ungrouped windows (-1) hold one global window.
func (w *WindowAgg) PartitionField() int { return w.spec.GroupBy }

// Punctuate implements Punctuator. The input promise forwards unchanged,
// and this is sound DESPITE the open window buffers below ts: a count-based
// window emits mid-run only when an arrival completes a window, and the
// emission is stamped with that arriving tuple's timestamp — so every
// future emission carries a future arrival's Ts, which the input promise
// bounds above ts. Buffered values below the watermark can reach the output
// only through Flush, which the punctuation contract exempts (the engine's
// Stop protocol orders drain emissions explicitly, after all regular
// tuples). A naive watermark that ignored this distinction — treating the
// open buffers as releasable in-stream state — would be unsound; keeping
// the rule inside the operator is what lets each transform own its own
// proof.
func (w *WindowAgg) Punctuate(ts int64) (int64, bool) { return ts, true }

// Cost implements Transform.
func (w *WindowAgg) Cost() float64 { return w.cost }

// OutSchema implements Transform: (key, value) pairs.
func (w *WindowAgg) OutSchema(in *Schema) *Schema {
	keyKind := KindInt
	if w.spec.GroupBy >= 0 {
		keyKind = in.Field(w.spec.GroupBy).Kind
	}
	return MustSchema(Field{Name: "key", Kind: keyKind}, Field{Name: w.spec.Agg.String(), Kind: KindFloat})
}

// Apply implements Transform.
func (w *WindowAgg) Apply(t Tuple) []Tuple {
	key := any(int64(0))
	if w.spec.GroupBy >= 0 {
		key = t.Vals[w.spec.GroupBy]
	}
	st, ok := w.groups[key]
	if !ok {
		st = &windowState{}
		w.groups[key] = st
		w.order = append(w.order, key)
	}
	val := 1.0
	if w.spec.Agg != AggCount {
		val = t.Float(w.spec.Field)
	}
	st.buf = append(st.buf, val)
	st.ts = t.Ts
	if len(st.buf) < w.spec.Size {
		return nil
	}
	out := Tuple{Ts: st.ts, Vals: []any{key, w.aggregate(st.buf)}}
	// Slide: drop the oldest Slide values; tumbling drops the whole window.
	st.buf = append(st.buf[:0], st.buf[w.spec.Slide:]...)
	return []Tuple{out}
}

// Flush implements Transform: emits partial windows (per Aurora semantics a
// drained subnetwork reports what it has) and resets all state. Emissions
// are ordered by each group's last-contributing timestamp (ties broken by
// rendered key), so a sharded execution — where each shard flushes its own
// subset of groups and a timestamp merge reassembles them — drains in
// exactly the same order as a single instance holding every group.
func (w *WindowAgg) Flush() []Tuple {
	var out []Tuple
	keys := append([]any(nil), w.order...)
	sort.SliceStable(keys, func(i, j int) bool {
		a, b := w.groups[keys[i]], w.groups[keys[j]]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j])
	})
	for _, key := range keys {
		st := w.groups[key]
		if len(st.buf) > 0 {
			out = append(out, Tuple{Ts: st.ts, Vals: []any{key, w.aggregate(st.buf)}})
		}
	}
	w.groups = make(map[any]*windowState)
	w.order = nil
	return out
}

// aggregate reduces the window buffer.
func (w *WindowAgg) aggregate(buf []float64) float64 {
	switch w.spec.Agg {
	case AggCount:
		return float64(len(buf))
	case AggSum:
		return kahanSum(buf)
	case AggAvg:
		return kahanSum(buf) / float64(len(buf))
	case AggMin:
		min := math.Inf(1)
		for _, v := range buf {
			if v < min {
				min = v
			}
		}
		return min
	case AggMax:
		max := math.Inf(-1)
		for _, v := range buf {
			if v > max {
				max = v
			}
		}
		return max
	default:
		return math.NaN()
	}
}

// kahanSum sums with compensated arithmetic so long windows stay accurate.
func kahanSum(vals []float64) float64 {
	var sum, comp float64
	for _, v := range vals {
		y := v - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// ExportKeyedState implements KeyedStateMover: it hands off every open
// group's window buffer and resets the operator. Exported in first-seen
// order is irrelevant — the importer re-establishes its own order.
func (w *WindowAgg) ExportKeyedState() map[any]any {
	out := make(map[any]any, len(w.groups))
	for key, st := range w.groups {
		out[key] = st
	}
	w.groups = make(map[any]*windowState)
	w.order = nil
	return out
}

// ImportKeyedState implements KeyedStateMover: the group's open window
// resumes on this instance exactly where the exporter left it. The key
// counts as first-seen at import time for Flush ordering.
func (w *WindowAgg) ImportKeyedState(key, state any) {
	w.groups[key] = state.(*windowState)
	w.order = append(w.order, key)
}

// GroupKeys returns the currently-open group keys in first-seen order;
// tests use it to inspect window state.
func (w *WindowAgg) GroupKeys() []any {
	keys := append([]any(nil), w.order...)
	sort.SliceStable(keys, func(i, j int) bool {
		return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j])
	})
	return keys
}
