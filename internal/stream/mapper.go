package stream

// MapFunc rewrites a tuple's values; the timestamp is preserved by Map.
type MapFunc func(Tuple) []any

// Map is a stateless projection/derivation operator: each input tuple
// yields exactly one output tuple whose values are produced by the map
// function.
type Map struct {
	name string
	fn   MapFunc
	out  *Schema
	cost float64
	// addField/addDelta describe the structured add-to-field rewrite
	// (NewAddMap) the columnar kernel executes; addField is -1 for
	// closure-built maps, which stay row-only.
	addField int
	addDelta float64
}

// NewMap builds a map operator emitting tuples with the given output schema.
// Closure map functions are opaque, so the operator runs on the boxed row
// path only; use NewAddMap for the structured rewrite the columnar kernels
// can execute.
func NewMap(name string, cost float64, out *Schema, fn MapFunc) *Map {
	return &Map{name: name, fn: fn, out: out, cost: cost, addField: -1}
}

// NewAddMap builds a map operator that adds delta to numeric field i,
// passing every other field through unchanged. Row-path semantics follow
// Tuple.Float — an int input widens and the result is stored as float64 —
// so the output schema records field i as KindFloat. On the engine's
// columnar path the rewrite compiles to one in-place add over field i's
// float column; the chain qualifies when the field is already KindFloat
// (an int column would change layout when widened, which the columnar
// contract forbids, so int inputs take the row path).
func NewAddMap(name string, cost float64, field int, delta float64) *Map {
	return &Map{name: name, cost: cost, addField: field, addDelta: delta, fn: func(t Tuple) []any {
		vals := make([]any, len(t.Vals))
		copy(vals, t.Vals)
		vals[field] = t.Float(field) + delta
		return vals
	}}
}

// Name implements Transform.
func (m *Map) Name() string { return m.name }

// Apply implements Transform.
func (m *Map) Apply(t Tuple) []Tuple {
	return []Tuple{{Ts: t.Ts, Vals: m.fn(t)}}
}

// ApplyBatch implements BatchTransform: one pass over the batch emitting the
// mapped tuple for each input without the per-tuple []Tuple wrapper Apply
// allocates. A map emits exactly one tuple per input scanning forward, so
// out may alias in's backing array (out = in[:0]) for in-place rewriting.
func (m *Map) ApplyBatch(in []Tuple, out []Tuple) []Tuple {
	for _, t := range in {
		out = append(out, Tuple{Ts: t.Ts, Vals: m.fn(t)})
	}
	return out
}

// Flush implements Transform; maps hold no state.
func (m *Map) Flush() []Tuple { return nil }

// Stateless implements StatelessOp: maps keep no cross-tuple state.
func (m *Map) Stateless() bool { return true }

// Punctuate implements Punctuator: a map emits exactly one tuple per input
// with the input's timestamp preserved, so the input promise forwards
// unchanged.
func (m *Map) Punctuate(ts int64) (int64, bool) { return ts, true }

// Cost implements Transform.
func (m *Map) Cost() float64 { return m.cost }

// OutSchema implements Transform. A structured add-map derives its output
// schema from the input: the rewritten field becomes KindFloat (Tuple.Float
// widening), everything else passes through.
func (m *Map) OutSchema(in *Schema) *Schema {
	if m.addField < 0 {
		return m.out
	}
	if in == nil || m.addField >= in.NumFields() {
		return nil
	}
	if in.Field(m.addField).Kind == KindFloat {
		return in
	}
	fields := make([]Field, in.NumFields())
	for i := range fields {
		fields[i] = in.Field(i)
	}
	fields[m.addField].Kind = KindFloat
	out, err := NewSchema(fields...)
	if err != nil {
		return nil
	}
	return out
}

// ColumnarOK implements ColumnarTransform: the structured add rewrites one
// float column in place. An int field is excluded — the row path widens it
// to float64, which would change the batch's physical layout, and the
// columnar contract requires layout preservation — so int-field add chains
// simply run on the row path.
func (m *Map) ColumnarOK(in *Schema) bool {
	return m.addField >= 0 && in != nil && m.addField < in.NumFields() &&
		in.Field(m.addField).Kind == KindFloat
}

// ApplyColBatch implements ColumnarTransform: one vectorizable pass adding
// the delta over the field's float column.
func (m *Map) ApplyColBatch(b *ColBatch) {
	col := b.Floats(m.addField)
	for i := range col {
		col[i] += m.addDelta
	}
}

// NewProject builds a map operator keeping only the given field positions
// of the input schema.
func NewProject(name string, cost float64, in *Schema, fields ...int) *Map {
	kept := make([]Field, len(fields))
	for i, f := range fields {
		kept[i] = in.Field(f)
	}
	out := MustSchema(kept...)
	idx := append([]int(nil), fields...)
	return NewMap(name, cost, out, func(t Tuple) []any {
		vals := make([]any, len(idx))
		for i, f := range idx {
			vals[i] = t.Vals[f]
		}
		return vals
	})
}

// Union is a stateless binary operator that interleaves both inputs
// unchanged; the two input schemas must match. (The per-side punctuation
// watermarks are control-plane liveness state, not data state: they do not
// affect which tuples the union emits, so Stateless stays true.)
type Union struct {
	name string
	cost float64
	wm   sideWatermarks
}

// NewUnion builds a union operator.
func NewUnion(name string, cost float64) *Union { return &Union{name: name, cost: cost} }

// Name implements BinaryTransform.
func (u *Union) Name() string { return u.name }

// ApplyLeft implements BinaryTransform.
func (u *Union) ApplyLeft(t Tuple) []Tuple { return []Tuple{t} }

// ApplyRight implements BinaryTransform.
func (u *Union) ApplyRight(t Tuple) []Tuple { return []Tuple{t} }

// Flush implements BinaryTransform; unions hold no state.
func (u *Union) Flush() []Tuple { return nil }

// Stateless implements StatelessOp: unions keep no cross-tuple state.
func (u *Union) Stateless() bool { return true }

// PreservesTuples implements TuplePreserver: a union interleaves input
// tuples unchanged.
func (u *Union) PreservesTuples() bool { return true }

// PunctuateSide implements BinaryPunctuator: the union emits every arrival
// unchanged, so its future output is bounded by the weaker input promise —
// min across sides, and nothing until both sides have punctuated (the
// silent side could still deliver arbitrarily old tuples).
func (u *Union) PunctuateSide(side Side, ts int64) (int64, bool) {
	return u.wm.Observe(side, ts)
}

// Cost implements BinaryTransform.
func (u *Union) Cost() float64 { return u.cost }

// OutSchema implements BinaryTransform; both sides share the schema.
func (u *Union) OutSchema(left, _ *Schema) *Schema { return left }
