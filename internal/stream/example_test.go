package stream_test

import (
	"fmt"

	"repro/internal/stream"
)

// ExamplePipeline runs a three-stage goroutine pipeline: select high-value
// trades, project the price, and average each pair.
func ExamplePipeline() {
	schema := stream.MustSchema(
		stream.Field{Name: "symbol", Kind: stream.KindString},
		stream.Field{Name: "price", Kind: stream.KindFloat},
	)
	pipe := stream.NewPipeline(4,
		stream.NewFilter("high", 1, stream.FieldCmp(1, stream.Gt, 100)),
		stream.NewProject("price", 1, schema, 1),
		stream.MustWindowAgg("avg2", 1, stream.WindowSpec{
			Size: 2, Agg: stream.AggAvg, Field: 0, GroupBy: -1,
		}),
	)
	src := stream.SliceSource([]stream.Tuple{
		stream.NewTuple(1, "ACME", 120.0),
		stream.NewTuple(2, "ACME", 80.0), // filtered out
		stream.NewTuple(3, "ACME", 140.0),
		stream.NewTuple(4, "ACME", 200.0),
		stream.NewTuple(5, "ACME", 220.0),
	})
	for _, t := range stream.Collect(pipe.Run(src)) {
		fmt.Printf("avg=%.0f\n", t.Float(1))
	}
	// Output:
	// avg=130
	// avg=210
}

// ExampleHashJoin joins trades with news on the symbol.
func ExampleHashJoin() {
	join := stream.NewHashJoin("j", 1, 0, 0, 8)
	join.ApplyLeft(stream.NewTuple(1, "ACME", 150.0))
	out := join.ApplyRight(stream.NewTuple(2, "ACME", "earnings beat"))
	fmt.Println(out[0].Str(0), out[0].Float(1), out[0].Str(3))
	// Output: ACME 150 earnings beat
}
