// Package stream provides the data-stream substrate the paper's DSMS center
// processes: typed tuples, schemas, and the continuous-query operators
// (filter, map/project, windowed aggregation, windowed symmetric-hash join,
// union) that admitted queries execute. Operators are pure per-tuple
// transforms so the engine package can share one physical operator among
// many queries (Aurora-style shared processing); pipeline.go additionally
// runs transform chains as goroutine pipelines for standalone use.
package stream

import (
	"fmt"
	"strings"
)

// Kind enumerates tuple field types.
type Kind int

// Supported field kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindString
	KindBool
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Field is a named, typed column of a stream schema.
type Field struct {
	Name string
	Kind Kind
}

// Schema describes the fields of a stream's tuples.
type Schema struct {
	fields []Field
	index  map[string]int
	layout string
}

// NewSchema builds a schema from the given fields. Field names must be
// unique and non-empty.
func NewSchema(fields ...Field) (*Schema, error) {
	idx := make(map[string]int, len(fields))
	lay := make([]byte, len(fields))
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("stream: field %d has empty name", i)
		}
		if _, dup := idx[f.Name]; dup {
			return nil, fmt.Errorf("stream: duplicate field %q", f.Name)
		}
		idx[f.Name] = i
		lay[i] = layoutByte(f.Kind)
	}
	return &Schema{fields: append([]Field(nil), fields...), index: idx, layout: string(lay)}, nil
}

// layoutByte is the one-byte layout code for a field kind.
func layoutByte(k Kind) byte {
	switch k {
	case KindInt:
		return 'i'
	case KindFloat:
		return 'f'
	case KindString:
		return 's'
	case KindBool:
		return 'b'
	default:
		return '?'
	}
}

// MustSchema is NewSchema that panics on error, for fixtures.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumFields returns the number of fields.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// IndexOf returns the position of the named field, or -1.
func (s *Schema) IndexOf(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Layout returns the schema's physical column layout as one byte per field
// ('i', 'f', 's' or 'b'). Two schemas with equal layouts store their columns
// identically, which is what the columnar batch pool classes buffers by —
// field names and widened-vs-declared kinds don't matter to storage.
func (s *Schema) Layout() string { return s.layout }

// String renders the schema as "(name:kind, ...)".
func (s *Schema) String() string {
	parts := make([]string, len(s.fields))
	for i, f := range s.fields {
		parts[i] = f.Name + ":" + f.Kind.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Tuple is one stream element: a logical timestamp (monotone per stream)
// and a value per schema field. A tuple may instead be a punctuation
// marker (see NewPunctuation): a control entry carried in-band alongside
// regular tuples that promises the stream has advanced past its timestamp.
type Tuple struct {
	// Ts is the tuple's logical timestamp in simulation ticks. For a
	// punctuation marker it is the watermark: no later regular tuple on the
	// same stream will carry Ts at or below it.
	Ts int64
	// Vals holds one value per schema field; each is int64, float64, string
	// or bool matching the field kind. Punctuation markers carry no values.
	Vals []any
	// punct marks the tuple as a punctuation control entry. Unexported so a
	// marker can only be built through NewPunctuation and regular tuple
	// literals throughout the codebase stay regular.
	punct bool
}

// NewTuple builds a tuple.
func NewTuple(ts int64, vals ...any) Tuple {
	return Tuple{Ts: ts, Vals: vals}
}

// NewPunctuation builds a punctuation marker: an in-band promise that no
// later regular tuple on this stream will carry a timestamp <= ts.
// End-of-stream Flush emissions are exempt — a drain's ordering is the
// engine's Stop protocol's concern, not the running stream's (see
// Punctuator).
func NewPunctuation(ts int64) Tuple {
	return Tuple{Ts: ts, punct: true}
}

// IsPunct reports whether the tuple is a punctuation marker rather than a
// data tuple. Markers carry no field values and must not be handed to
// Transform.Apply; operators route them through Punctuator /
// BinaryPunctuator instead.
func (t Tuple) IsPunct() bool { return t.punct }

// Clone returns a deep copy of the tuple (values are scalars, so a slice
// copy suffices).
func (t Tuple) Clone() Tuple {
	vals := make([]any, len(t.Vals))
	copy(vals, t.Vals)
	return Tuple{Ts: t.Ts, Vals: vals, punct: t.punct}
}

// Int returns field i as int64; it panics if the field holds another kind
// (schemas are validated at plan build time, so this indicates a bug).
func (t Tuple) Int(i int) int64 { return t.Vals[i].(int64) }

// Float returns field i as float64, widening int64 values.
func (t Tuple) Float(i int) float64 {
	switch v := t.Vals[i].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	default:
		panic(fmt.Sprintf("stream: field %d is %T, not numeric", i, t.Vals[i]))
	}
}

// Str returns field i as a string.
func (t Tuple) Str(i int) string { return t.Vals[i].(string) }

// Bool returns field i as a bool.
func (t Tuple) Bool(i int) bool { return t.Vals[i].(bool) }

// checkValue verifies v matches kind k.
func checkValue(v any, k Kind) bool {
	switch k {
	case KindInt:
		_, ok := v.(int64)
		return ok
	case KindFloat:
		_, ok := v.(float64)
		if !ok {
			_, ok = v.(int64)
		}
		return ok
	case KindString:
		_, ok := v.(string)
		return ok
	case KindBool:
		_, ok := v.(bool)
		return ok
	}
	return false
}

// Conforms reports whether the tuple matches the schema (arity and kinds).
func (s *Schema) Conforms(t Tuple) bool {
	if len(t.Vals) != len(s.fields) {
		return false
	}
	for i, f := range s.fields {
		if !checkValue(t.Vals[i], f.Kind) {
			return false
		}
	}
	return true
}
