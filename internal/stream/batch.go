package stream

// BatchTransform is the batch-at-a-time fast path of Transform: ApplyBatch
// processes a whole input batch in one call, appending every emission to out
// and returning the extended slice. It exists so hot paths (the engine's
// fused operator chains, Pipeline.RunBatches) can run an operator over a
// batch without the per-tuple []Tuple allocation Transform.Apply forces on
// every call.
//
// Contract, beyond "equivalent to calling Apply per tuple in order":
//
//   - ApplyBatch must tolerate out sharing in's backing array as out =
//     in[:0] (in-place operation). That is only sound for operators that
//     scan forward emitting at most one tuple per input — the write cursor
//     then never passes the read cursor — so an operator that can emit more
//     than one tuple per input must not implement BatchTransform.
//   - in never contains punctuation markers; callers route markers through
//     Punctuator, exactly as they do for Apply.
//
// Filter and Map implement it natively; BatchApply adapts everything else.
type BatchTransform interface {
	ApplyBatch(in []Tuple, out []Tuple) []Tuple
}

// BatchApply runs t over every tuple of in, appending emissions to out and
// returning the extended slice. It uses the operator's native ApplyBatch
// when t implements BatchTransform and falls back to per-tuple Apply
// otherwise.
//
// out may alias in's backing array (out = in[:0]) only when t implements
// BatchTransform — the fallback path appends to out while still reading in,
// and a multi-tuple emission would overrun the read cursor.
func BatchApply(t Transform, in []Tuple, out []Tuple) []Tuple {
	if bt, ok := t.(BatchTransform); ok {
		return bt.ApplyBatch(in, out)
	}
	for _, tup := range in {
		out = append(out, t.Apply(tup)...)
	}
	return out
}
