package stream

import (
	"math/rand"
	"reflect"
	"testing"
)

var colSchema = MustSchema(
	Field{Name: "sym", Kind: KindString},
	Field{Name: "qty", Kind: KindInt},
	Field{Name: "px", Kind: KindFloat},
	Field{Name: "hot", Kind: KindBool},
)

func TestSchemaLayout(t *testing.T) {
	if got := colSchema.Layout(); got != "sifb" {
		t.Fatalf("layout = %q, want %q", got, "sifb")
	}
	other := MustSchema(
		Field{Name: "a", Kind: KindString},
		Field{Name: "b", Kind: KindInt},
		Field{Name: "c", Kind: KindFloat},
		Field{Name: "d", Kind: KindBool},
	)
	if other.Layout() != colSchema.Layout() {
		t.Fatalf("same-kind schemas must share a layout")
	}
}

func randColTuples(rng *rand.Rand, n int) []Tuple {
	ts := make([]Tuple, n)
	for i := range ts {
		ts[i] = NewTuple(int64(i+1),
			[]string{"AAA", "BBB", "CCC"}[rng.Intn(3)],
			int64(rng.Intn(200)),
			float64(rng.Intn(200)),
			rng.Intn(2) == 0,
		)
	}
	return ts
}

func TestColBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := randColTuples(rng, 57)
	b := NewColBatch(colSchema, 8)
	for _, tp := range in {
		b.AppendTuple(tp)
	}
	if b.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(in))
	}
	out := b.AppendTo(nil)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %v\nout: %v", in, out)
	}
}

func TestColBatchWidensIntInFloatField(t *testing.T) {
	// Schemas admit int64 values in float fields (checkValue); the typed
	// column stores the widened value, so the round trip normalizes the box.
	b := NewColBatch(colSchema, 1)
	b.AppendTuple(NewTuple(1, "AAA", int64(2), int64(42), true))
	got := b.AppendTo(nil)[0]
	if v, ok := got.Vals[2].(float64); !ok || v != 42 {
		t.Fatalf("float field = %#v, want float64(42)", got.Vals[2])
	}
}

func TestColBatchKeep(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := randColTuples(rng, 30)
	b := NewColBatch(colSchema, 0)
	for _, tp := range in {
		b.AppendTuple(tp)
	}
	b.Keep([]int32{0, 7, 29})
	want := []Tuple{in[0], in[7], in[29]}
	if got := b.AppendTo(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("Keep gather mismatch: got %v want %v", got, want)
	}
	b.Keep(nil)
	if b.Len() != 0 {
		t.Fatalf("Keep(nil) left %d rows", b.Len())
	}
}

func TestColBatchWatermarkFolds(t *testing.T) {
	b := NewColBatch(colSchema, 0)
	if _, ok := b.Watermark(); ok {
		t.Fatal("fresh batch has a watermark")
	}
	b.SetWatermark(5)
	b.SetWatermark(3) // weaker promise must not regress the fold
	b.SetWatermark(9)
	if wm, ok := b.Watermark(); !ok || wm != 9 {
		t.Fatalf("watermark = %d,%v want 9,true", wm, ok)
	}
	b.Reset()
	if _, ok := b.Watermark(); ok {
		t.Fatal("Reset kept the watermark")
	}
}

func TestColBatchAppendColsAndRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randColTuples(rng, 12)
	src := NewColBatch(colSchema, 0)
	for _, tp := range in {
		src.AppendTuple(tp)
	}
	src.SetWatermark(11)
	dst := NewColBatch(colSchema, 0)
	dst.AppendCols(src)
	dst.AppendRowFrom(src, 3)
	want := append(append([]Tuple(nil), in...), in[3])
	if got := dst.AppendTo(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendCols+AppendRowFrom mismatch")
	}
	if wm, ok := dst.Watermark(); !ok || wm != 11 {
		t.Fatalf("AppendCols dropped the watermark: %d,%v", wm, ok)
	}
}

// applyRows runs a transform tuple-at-a-time over rows — the oracle the
// columnar kernels are compared against.
func applyRows(tr Transform, in []Tuple) []Tuple {
	var out []Tuple
	for _, t := range in {
		out = append(out, tr.Apply(t)...)
	}
	return out
}

func TestCmpFilterColumnarMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	filters := []*Filter{
		NewCmpFilter("f-gt", 1, CmpSpec{Field: 2, Op: Gt, Num: 100}),
		NewCmpFilter("f-int", 1, CmpSpec{Field: 1, Op: Le, Num: 120}),
		NewCmpFilter("f-str", 1, CmpSpec{Field: 0, Op: Eq, Str: "AAA", IsStr: true}),
		NewCmpFilter("f-str-ne", 1, CmpSpec{Field: 0, Op: Ne, Str: "BBB", IsStr: true}),
		NewCmpFilter("f-conj", 1,
			CmpSpec{Field: 2, Op: Ge, Num: 50},
			CmpSpec{Field: 1, Op: Lt, Num: 150},
			CmpSpec{Field: 0, Op: Ne, Str: "CCC", IsStr: true},
		),
		NewCmpFilter("f-none", 1, CmpSpec{Field: 2, Op: Gt, Num: 1e9}),
		NewCmpFilter("f-pass", 1),
	}
	for _, f := range filters {
		if !f.ColumnarOK(colSchema) {
			t.Fatalf("%s: ColumnarOK = false", f.Name())
		}
		in := randColTuples(rng, 100)
		want := applyRows(f, in)
		b := NewColBatch(colSchema, 0)
		for _, tp := range in {
			b.AppendTuple(tp)
		}
		f.ApplyColBatch(b)
		got := b.AppendTo(nil)
		// The row oracle keeps int-boxed float fields; normalize through a
		// round trip so both sides carry the widened representation.
		norm := NewColBatch(colSchema, 0)
		for _, tp := range want {
			norm.AppendTuple(tp)
		}
		if want = norm.AppendTo(nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: columnar %v != rows %v", f.Name(), got, want)
		}
	}
}

func TestAddMapColumnarMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewAddMap("m-add", 1, 2, 2.5)
	if !m.ColumnarOK(colSchema) {
		t.Fatal("ColumnarOK = false on a float field")
	}
	if m.OutSchema(colSchema) != colSchema {
		t.Fatal("OutSchema must preserve a float-field schema")
	}
	in := randColTuples(rng, 64)
	want := applyRows(m, in)
	b := NewColBatch(colSchema, 0)
	for _, tp := range in {
		b.AppendTuple(tp)
	}
	m.ApplyColBatch(b)
	if got := b.AppendTo(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("columnar add %v != rows %v", got, want)
	}
}

func TestColumnarQualification(t *testing.T) {
	// Closure-built operators are opaque and must not qualify.
	cf := NewFilter("closure", 1, func(Tuple) bool { return true })
	if cf.ColumnarOK(colSchema) {
		t.Fatal("closure filter qualified")
	}
	cm := NewMap("closure", 1, colSchema, func(t Tuple) []any { return t.Vals })
	if cm.ColumnarOK(colSchema) {
		t.Fatal("closure map qualified")
	}
	// An add over an int field would widen — layout change, row path only.
	im := NewAddMap("int-add", 1, 1, 1)
	if im.ColumnarOK(colSchema) {
		t.Fatal("int-field add qualified")
	}
	if out := im.OutSchema(colSchema); out.Field(1).Kind != KindFloat {
		t.Fatalf("int-add OutSchema field kind = %v, want float", out.Field(1).Kind)
	}
	// Out-of-range or mistyped specs disqualify the filter.
	if NewCmpFilter("oob", 1, CmpSpec{Field: 9, Op: Gt, Num: 1}).ColumnarOK(colSchema) {
		t.Fatal("out-of-range spec qualified")
	}
	if NewCmpFilter("str-lt", 1, CmpSpec{Field: 0, Op: Lt, Str: "x", IsStr: true}).ColumnarOK(colSchema) {
		t.Fatal("string Lt qualified")
	}
	if NewCmpFilter("num-on-str", 1, CmpSpec{Field: 0, Op: Gt, Num: 1}).ColumnarOK(colSchema) {
		t.Fatal("numeric spec on string field qualified")
	}
}

func TestColBatchResetForAndInvalidate(t *testing.T) {
	b := NewColBatch(colSchema, 4)
	b.AppendTuple(NewTuple(1, "AAA", int64(1), 2.0, true))
	b.Invalidate()
	if b.Len() != 0 {
		t.Fatal("Invalidate kept rows")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("append through an invalidated batch did not panic")
			}
		}()
		b.AppendTuple(NewTuple(2, "BBB", int64(1), 2.0, true))
	}()
	b.ResetFor(colSchema)
	b.AppendTuple(NewTuple(3, "CCC", int64(1), 2.0, true))
	if b.Len() != 1 {
		t.Fatal("ResetFor did not revive the batch")
	}
	mismatched := MustSchema(Field{Name: "x", Kind: KindInt})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ResetFor with a different layout did not panic")
			}
		}()
		b.ResetFor(mismatched)
	}()
}
