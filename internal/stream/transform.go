package stream

// Transform is a unary continuous-query operator: it consumes one input
// tuple at a time and emits zero or more output tuples. Stateful transforms
// (windows, aggregates) carry their state internally; Flush closes any open
// state at end-of-stream.
//
// Cost is the operator's simulated per-tuple processing cost in capacity
// units — the engine's load estimator multiplies it by the observed input
// rate to produce the operator load c_j the admission auction consumes
// (paper Section II: "each operator o_j has an associated load c_j ...
// reasonably approximated by the system").
type Transform interface {
	// Name returns a short operator label for plans and debugging.
	Name() string
	// Apply processes one tuple and returns the emitted tuples (often 0 or 1).
	Apply(t Tuple) []Tuple
	// Flush emits any tuples held in open state (e.g. a partial window) and
	// resets the transform.
	Flush() []Tuple
	// Cost returns the simulated per-tuple processing cost.
	Cost() float64
	// OutSchema returns the schema of emitted tuples given the input schema.
	OutSchema(in *Schema) *Schema
}

// BinaryTransform is a two-input operator (join, union): tuples arrive
// tagged with the side they came from.
type BinaryTransform interface {
	// Name returns a short operator label.
	Name() string
	// ApplyLeft processes a tuple from the left input.
	ApplyLeft(t Tuple) []Tuple
	// ApplyRight processes a tuple from the right input.
	ApplyRight(t Tuple) []Tuple
	// Flush emits held state and resets.
	Flush() []Tuple
	// Cost returns the simulated per-tuple processing cost.
	Cost() float64
	// OutSchema returns the output schema given both input schemas.
	OutSchema(left, right *Schema) *Schema
}

// Side tags which input of a binary operator a tuple belongs to.
type Side int

// Binary operator input sides.
const (
	Left Side = iota
	Right
)
