package stream

// Transform is a unary continuous-query operator: it consumes one input
// tuple at a time and emits zero or more output tuples. Stateful transforms
// (windows, aggregates) carry their state internally; Flush closes any open
// state at end-of-stream.
//
// Cost is the operator's simulated per-tuple processing cost in capacity
// units — the engine's load estimator multiplies it by the observed input
// rate to produce the operator load c_j the admission auction consumes
// (paper Section II: "each operator o_j has an associated load c_j ...
// reasonably approximated by the system").
type Transform interface {
	// Name returns a short operator label for plans and debugging.
	Name() string
	// Apply processes one tuple and returns the emitted tuples (often 0 or 1).
	Apply(t Tuple) []Tuple
	// Flush emits any tuples held in open state (e.g. a partial window) and
	// resets the transform.
	Flush() []Tuple
	// Cost returns the simulated per-tuple processing cost.
	Cost() float64
	// OutSchema returns the schema of emitted tuples given the input schema.
	OutSchema(in *Schema) *Schema
}

// BinaryTransform is a two-input operator (join, union): tuples arrive
// tagged with the side they came from.
type BinaryTransform interface {
	// Name returns a short operator label.
	Name() string
	// ApplyLeft processes a tuple from the left input.
	ApplyLeft(t Tuple) []Tuple
	// ApplyRight processes a tuple from the right input.
	ApplyRight(t Tuple) []Tuple
	// Flush emits held state and resets.
	Flush() []Tuple
	// Cost returns the simulated per-tuple processing cost.
	Cost() float64
	// OutSchema returns the output schema given both input schemas.
	OutSchema(left, right *Schema) *Schema
}

// ColumnarTransform is implemented by stateless unary transforms that can
// execute natively on a struct-of-arrays ColBatch, avoiding the boxed row
// layout entirely. The engine's fused prefix path runs a chain column-at-a
// -time when every member implements this interface and accepts the schema
// flowing into it.
//
// The contract mirrors BatchTransform's single-owner aliasing rule, applied
// to whole batches: ApplyColBatch mutates b in place (compacting rows,
// rewriting columns) and must preserve the batch's physical layout — a
// columnar member may change field semantics (e.g. widen a value) but never
// the column layout, so the batch stays in its pool class and downstream
// members address the same columns. Emitting more rows than arrived is not
// allowed (the same ≤1-emission rule that makes in-place row fusion sound).
// Implementations must not retain b or any column slice past the call.
type ColumnarTransform interface {
	// ColumnarOK reports whether the transform can run natively on columnar
	// batches of the given input schema. A false return (unsupported field
	// kind, closure-based predicate, schema-changing projection) routes the
	// whole chain through the boxed row path instead — correct either way,
	// just slower.
	ColumnarOK(in *Schema) bool
	// ApplyColBatch processes every row of b in place.
	ApplyColBatch(b *ColBatch)
}

// PartitionKeyer is implemented by stateful unary transforms whose internal
// state is partitioned by one input field. PartitionField returns that
// field's position, or -1 when the state is global — a single group spanning
// the whole stream, which cannot be split across partitions.
//
// Every transform must declare its partitioning contract: either a
// partition key (this interface / BinaryPartitionKeyer) or statelessness
// (StatelessOp). The engine's stage analysis treats transforms declaring
// neither as global — the closed default that keeps a forgotten
// declaration from silently sharding per-tuple state wrong.
type PartitionKeyer interface {
	PartitionField() int
}

// BinaryPartitionKeyer is PartitionKeyer for two-input transforms: a
// windowed equi-join's state is keyed by the join fields, one per side.
// Either value may be -1 to declare global (unpartitionable) state.
type BinaryPartitionKeyer interface {
	PartitionFields() (left, right int)
}

// StatelessOp marks transforms (unary or binary) that keep no state across
// tuples — Filter, Map/Project, Union — so any partitioning of their input
// preserves their results. Stateful transforms declare a key via
// PartitionKeyer / BinaryPartitionKeyer instead; a transform declaring
// neither is pinned to the global stage by the engine's stage analysis.
type StatelessOp interface {
	Stateless() bool
}

// TuplePreserver marks transforms that emit input tuples with their field
// layout unchanged (a filter passes or drops whole tuples). The engine's
// stage analysis uses it to trace a partition key through stateless
// operators: downstream of a preserver, field i still means what it meant at
// the source.
type TuplePreserver interface {
	PreservesTuples() bool
}

// KeyedStateMover is implemented by stateful partitioned transforms (those
// declaring a key via PartitionKeyer / BinaryPartitionKeyer) whose per-key
// state can be moved between instances. The engine's elastic reshard uses it
// at period boundaries: the retiring shard's operators export their state,
// and each key's bundle is imported into the structurally identical operator
// on the key's new owner shard — so open windows and join buffers survive a
// shard-count change without losing or duplicating tuples.
//
// The state bundles are opaque to the caller: a bundle exported by one
// instance is only ever imported into another instance of the same concrete
// type, at the same position in a structurally identical plan.
type KeyedStateMover interface {
	// ExportKeyedState removes and returns the transform's entire per-key
	// state, leaving the instance empty (as if freshly constructed).
	ExportKeyedState() map[any]any
	// ImportKeyedState installs one previously exported bundle under its
	// key. It is called at most once per key, on an instance that has not
	// yet processed any tuple of that key.
	ImportKeyedState(key, state any)
}

// Side tags which input of a binary operator a tuple belongs to.
type Side int

// Binary operator input sides.
const (
	Left Side = iota
	Right
)
