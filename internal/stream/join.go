package stream

// HashJoin is a windowed symmetric hash equi-join: each arriving tuple is
// inserted into its side's window and probed against the opposite side's
// window; matches are concatenated left-then-right. Windows are count-based
// per join key: each side retains at most Window tuples per key (oldest
// evicted first), which bounds state like Aurora's windowed joins.
type HashJoin struct {
	name     string
	cost     float64
	leftKey  int
	rightKey int
	window   int
	left     map[any][]Tuple
	right    map[any][]Tuple
	wm       sideWatermarks
}

// NewHashJoin builds a join matching left field leftKey against right field
// rightKey, retaining up to window tuples per key per side. A window of 0
// means 1 (the smallest useful window).
func NewHashJoin(name string, cost float64, leftKey, rightKey, window int) *HashJoin {
	if window <= 0 {
		window = 1
	}
	return &HashJoin{
		name:     name,
		cost:     cost,
		leftKey:  leftKey,
		rightKey: rightKey,
		window:   window,
		left:     make(map[any][]Tuple),
		right:    make(map[any][]Tuple),
	}
}

// Name implements BinaryTransform.
func (j *HashJoin) Name() string { return j.name }

// PartitionFields implements BinaryPartitionKeyer: both windows are keyed by
// the join fields, so co-partitioning the inputs on them preserves results.
func (j *HashJoin) PartitionFields() (left, right int) { return j.leftKey, j.rightKey }

// PunctuateSide implements BinaryPunctuator: min across sides, like Union.
// Sound despite the retained join windows: a probe emission is stamped
// max(arriving.Ts, stored.Ts) >= the arriving tuple's Ts, and future
// arrivals on either side exceed that side's promise — so every future
// emission exceeds the min. The stored windows themselves never reach the
// output except through a future probe (Flush emits nothing).
func (j *HashJoin) PunctuateSide(side Side, ts int64) (int64, bool) {
	return j.wm.Observe(side, ts)
}

// Cost implements BinaryTransform.
func (j *HashJoin) Cost() float64 { return j.cost }

// OutSchema implements BinaryTransform: the concatenation of both schemas.
func (j *HashJoin) OutSchema(left, right *Schema) *Schema {
	fields := make([]Field, 0, left.NumFields()+right.NumFields())
	for i := 0; i < left.NumFields(); i++ {
		f := left.Field(i)
		f.Name = "l_" + f.Name
		fields = append(fields, f)
	}
	for i := 0; i < right.NumFields(); i++ {
		f := right.Field(i)
		f.Name = "r_" + f.Name
		fields = append(fields, f)
	}
	return MustSchema(fields...)
}

// ApplyLeft implements BinaryTransform.
func (j *HashJoin) ApplyLeft(t Tuple) []Tuple {
	key := t.Vals[j.leftKey]
	out := j.probe(t, j.right[key], true)
	j.insert(j.left, key, t)
	return out
}

// ApplyRight implements BinaryTransform.
func (j *HashJoin) ApplyRight(t Tuple) []Tuple {
	key := t.Vals[j.rightKey]
	out := j.probe(t, j.left[key], false)
	j.insert(j.right, key, t)
	return out
}

// probe joins t against the opposite window; fromLeft says which side t
// came from (output order is always left values then right values).
func (j *HashJoin) probe(t Tuple, opposite []Tuple, fromLeft bool) []Tuple {
	if len(opposite) == 0 {
		return nil
	}
	out := make([]Tuple, 0, len(opposite))
	for _, o := range opposite {
		ts := t.Ts
		if o.Ts > ts {
			ts = o.Ts
		}
		var vals []any
		if fromLeft {
			vals = append(append([]any(nil), t.Vals...), o.Vals...)
		} else {
			vals = append(append([]any(nil), o.Vals...), t.Vals...)
		}
		out = append(out, Tuple{Ts: ts, Vals: vals})
	}
	return out
}

// insert appends t to side[key], evicting the oldest tuple past the window.
func (j *HashJoin) insert(side map[any][]Tuple, key any, t Tuple) {
	buf := append(side[key], t)
	if len(buf) > j.window {
		buf = append(buf[:0], buf[1:]...)
	}
	side[key] = buf
}

// Flush implements BinaryTransform: joins emit nothing at end-of-stream but
// drop their windows.
func (j *HashJoin) Flush() []Tuple {
	j.left = make(map[any][]Tuple)
	j.right = make(map[any][]Tuple)
	return nil
}

// joinKeyState is one join key's exported window contents, both sides.
type joinKeyState struct {
	left, right []Tuple
}

// ExportKeyedState implements KeyedStateMover: each join key's retained
// window tuples (both sides, in arrival order) are handed off and the join
// is reset.
func (j *HashJoin) ExportKeyedState() map[any]any {
	out := make(map[any]any, len(j.left)+len(j.right))
	for key, buf := range j.left {
		out[key] = &joinKeyState{left: buf}
	}
	for key, buf := range j.right {
		if st, ok := out[key].(*joinKeyState); ok {
			st.right = buf
		} else {
			out[key] = &joinKeyState{right: buf}
		}
	}
	j.left = make(map[any][]Tuple)
	j.right = make(map[any][]Tuple)
	return out
}

// ImportKeyedState implements KeyedStateMover: the key's windows resume on
// this instance with their arrival order (and hence eviction order) intact.
func (j *HashJoin) ImportKeyedState(key, state any) {
	st := state.(*joinKeyState)
	if len(st.left) > 0 {
		j.left[key] = st.left
	}
	if len(st.right) > 0 {
		j.right[key] = st.right
	}
}

// StateSize returns the number of retained tuples across both windows;
// tests use it to verify eviction.
func (j *HashJoin) StateSize() int {
	n := 0
	for _, buf := range j.left {
		n += len(buf)
	}
	for _, buf := range j.right {
		n += len(buf)
	}
	return n
}
