package stream

import (
	"bytes"
	"encoding/gob"
)

// Checkpoint serialization support. The engine's operator-state checkpoints
// gob-encode exported keyed state (stream.KeyedStateMover) into staging
// segment frames; the state types travel inside interface values, so the
// concrete types — scalar partition keys and the operators' unexported state
// structs — register here, and the structs (whose fields are unexported by
// design) provide explicit GobEncode/GobDecode hooks.
//
// A Tuple's punctuation flag is deliberately NOT serialized: operator state
// buffers hold data tuples only (markers are control entries that never enter
// windows or join buffers), so nothing is lost.

func init() {
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
	gob.Register(&windowState{})
	gob.Register(&joinKeyState{})
}

// gobWindowState mirrors windowState with exported fields for encoding.
type gobWindowState struct {
	Buf []float64
	Ts  int64
}

// GobEncode implements gob.GobEncoder for checkpointed window state.
func (s *windowState) GobEncode() ([]byte, error) {
	var b bytes.Buffer
	err := gob.NewEncoder(&b).Encode(gobWindowState{Buf: s.buf, Ts: s.ts})
	return b.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (s *windowState) GobDecode(p []byte) error {
	var g gobWindowState
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&g); err != nil {
		return err
	}
	s.buf, s.ts = g.Buf, g.Ts
	return nil
}

// gobJoinKeyState mirrors joinKeyState with exported fields for encoding.
type gobJoinKeyState struct {
	Left, Right []Tuple
}

// GobEncode implements gob.GobEncoder for checkpointed join-window state.
func (s *joinKeyState) GobEncode() ([]byte, error) {
	var b bytes.Buffer
	err := gob.NewEncoder(&b).Encode(gobJoinKeyState{Left: s.left, Right: s.right})
	return b.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (s *joinKeyState) GobDecode(p []byte) error {
	var g gobJoinKeyState
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&g); err != nil {
		return err
	}
	s.left, s.right = g.Left, g.Right
	return nil
}
