package stream

import "fmt"

// Predicate decides whether a tuple passes a filter.
type Predicate func(Tuple) bool

// Filter is a selection operator: it emits exactly the tuples satisfying
// its predicate. It is stateless.
type Filter struct {
	name string
	pred Predicate
	cost float64
	// specs is the structured conjunction the predicate was built from
	// (NewCmpFilter) — the form the columnar kernels execute. structured
	// distinguishes an empty conjunction (columnar passthrough) from a
	// closure-built filter (NewFilter), which is opaque and row-only.
	specs      []CmpSpec
	structured bool
}

// NewFilter builds a filter with the given display name, predicate and
// simulated per-tuple cost. Closure predicates are opaque, so the filter
// runs on the boxed row path only; use NewCmpFilter for field-comparison
// conjunctions to unlock the columnar kernels.
func NewFilter(name string, cost float64, pred Predicate) *Filter {
	return &Filter{name: name, pred: pred, cost: cost}
}

// CmpSpec is one structured field comparison: field Op literal. IsStr
// selects the string literal (Eq/Ne only); otherwise Num compares
// numerically with int fields widened to float64 — exactly FieldCmp's
// semantics, so the row and columnar paths agree bit-for-bit.
type CmpSpec struct {
	Field int
	Op    CmpOp
	Num   float64
	Str   string
	IsStr bool
}

// NewCmpFilter builds a filter from a conjunction of structured field
// comparisons. Row-path semantics are identical to And(FieldCmp...) /
// FieldEqString, but the structured form also compiles to columnar
// selection-vector kernels, so chains containing it qualify for the
// engine's struct-of-arrays fused path. Zero specs yield a passthrough.
func NewCmpFilter(name string, cost float64, specs ...CmpSpec) *Filter {
	specs = append([]CmpSpec(nil), specs...)
	preds := make([]Predicate, len(specs))
	for i, sp := range specs {
		if sp.IsStr {
			idx, want, op := sp.Field, sp.Str, sp.Op
			if op == Ne {
				preds[i] = func(t Tuple) bool { return t.Str(idx) != want }
			} else {
				preds[i] = FieldEqString(idx, want)
			}
		} else {
			preds[i] = FieldCmp(sp.Field, sp.Op, sp.Num)
		}
	}
	// And of zero predicates is the always-true passthrough.
	return &Filter{name: name, pred: And(preds...), cost: cost, specs: specs, structured: true}
}

// Name implements Transform.
func (f *Filter) Name() string { return f.name }

// Apply implements Transform.
func (f *Filter) Apply(t Tuple) []Tuple {
	if f.pred(t) {
		return []Tuple{t}
	}
	return nil
}

// ApplyBatch implements BatchTransform: one pass over the batch appending
// exactly the passing tuples, with no per-tuple slice allocation. A filter
// emits at most one tuple per input scanning forward, so out may alias in's
// backing array (out = in[:0]) for in-place filtering.
func (f *Filter) ApplyBatch(in []Tuple, out []Tuple) []Tuple {
	for _, t := range in {
		if f.pred(t) {
			out = append(out, t)
		}
	}
	return out
}

// Flush implements Transform; filters hold no state.
func (f *Filter) Flush() []Tuple { return nil }

// Stateless implements StatelessOp: filters keep no cross-tuple state.
func (f *Filter) Stateless() bool { return true }

// PreservesTuples implements TuplePreserver: a filter passes tuples through
// unchanged.
func (f *Filter) PreservesTuples() bool { return true }

// Punctuate implements Punctuator: a filter emits arriving tuples unchanged
// or not at all, so the input promise ("no future input <= ts") carries over
// to the output stream as-is. This is exactly what makes a highly selective
// filter's quiet output edge provably advance.
func (f *Filter) Punctuate(ts int64) (int64, bool) { return ts, true }

// Cost implements Transform.
func (f *Filter) Cost() float64 { return f.cost }

// OutSchema implements Transform; selection preserves the schema.
func (f *Filter) OutSchema(in *Schema) *Schema { return in }

// ColumnarOK implements ColumnarTransform: only structured (NewCmpFilter)
// filters qualify, and every spec must resolve against the schema — a
// numeric comparison needs an int or float field, a string comparison needs
// a string field with Eq/Ne.
func (f *Filter) ColumnarOK(in *Schema) bool {
	if !f.structured || in == nil {
		return false
	}
	for _, sp := range f.specs {
		if sp.Field < 0 || sp.Field >= in.NumFields() {
			return false
		}
		k := in.Field(sp.Field).Kind
		if sp.IsStr {
			if k != KindString || (sp.Op != Eq && sp.Op != Ne) {
				return false
			}
		} else if k != KindInt && k != KindFloat {
			return false
		}
	}
	return true
}

// ApplyColBatch implements ColumnarTransform: each spec refines the
// selection vector over its typed column, then one gather compacts the
// batch to the surviving rows. Int columns widen per element to float64,
// matching the row path's Tuple.Float semantics exactly.
func (f *Filter) ApplyColBatch(b *ColBatch) {
	sel := b.AllSel()
	for _, sp := range f.specs {
		if len(sel) == 0 {
			break
		}
		if sp.IsStr {
			col := b.Strs(sp.Field)
			if sp.Op == Ne {
				sel = refine(sel, func(r int32) bool { return col[r] != sp.Str })
			} else {
				sel = refine(sel, func(r int32) bool { return col[r] == sp.Str })
			}
			continue
		}
		switch b.Schema().Field(sp.Field).Kind {
		case KindFloat:
			sel = refineCmp(sel, b.Floats(sp.Field), sp.Op, sp.Num)
		case KindInt:
			col := b.Ints(sp.Field)
			th := sp.Num
			switch sp.Op {
			case Eq:
				sel = refine(sel, func(r int32) bool { return float64(col[r]) == th })
			case Ne:
				sel = refine(sel, func(r int32) bool { return float64(col[r]) != th })
			case Lt:
				sel = refine(sel, func(r int32) bool { return float64(col[r]) < th })
			case Le:
				sel = refine(sel, func(r int32) bool { return float64(col[r]) <= th })
			case Gt:
				sel = refine(sel, func(r int32) bool { return float64(col[r]) > th })
			case Ge:
				sel = refine(sel, func(r int32) bool { return float64(col[r]) >= th })
			}
		}
	}
	b.Keep(sel)
}

// refine compacts sel in place to the rows keep admits.
func refine(sel []int32, keep func(int32) bool) []int32 {
	out := sel[:0]
	for _, r := range sel {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// refineCmp is refine specialized per operator over a float64 column — the
// hottest kernel, kept branch-free inside the scan loop.
func refineCmp(sel []int32, col []float64, op CmpOp, th float64) []int32 {
	out := sel[:0]
	switch op {
	case Eq:
		for _, r := range sel {
			if col[r] == th {
				out = append(out, r)
			}
		}
	case Ne:
		for _, r := range sel {
			if col[r] != th {
				out = append(out, r)
			}
		}
	case Lt:
		for _, r := range sel {
			if col[r] < th {
				out = append(out, r)
			}
		}
	case Le:
		for _, r := range sel {
			if col[r] <= th {
				out = append(out, r)
			}
		}
	case Gt:
		for _, r := range sel {
			if col[r] > th {
				out = append(out, r)
			}
		}
	case Ge:
		for _, r := range sel {
			if col[r] >= th {
				out = append(out, r)
			}
		}
	}
	return out
}

// CmpOp is a comparison operator for field predicates.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String returns the operator's symbol.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("cmp(%d)", int(op))
	}
}

// FieldCmp returns a predicate comparing numeric field i against threshold.
func FieldCmp(i int, op CmpOp, threshold float64) Predicate {
	return func(t Tuple) bool {
		v := t.Float(i)
		switch op {
		case Eq:
			return v == threshold
		case Ne:
			return v != threshold
		case Lt:
			return v < threshold
		case Le:
			return v <= threshold
		case Gt:
			return v > threshold
		case Ge:
			return v >= threshold
		default:
			return false
		}
	}
}

// FieldEqString returns a predicate matching string field i == want.
func FieldEqString(i int, want string) Predicate {
	return func(t Tuple) bool { return t.Str(i) == want }
}

// And combines predicates conjunctively.
func And(preds ...Predicate) Predicate {
	return func(t Tuple) bool {
		for _, p := range preds {
			if !p(t) {
				return false
			}
		}
		return true
	}
}

// Or combines predicates disjunctively.
func Or(preds ...Predicate) Predicate {
	return func(t Tuple) bool {
		for _, p := range preds {
			if p(t) {
				return true
			}
		}
		return false
	}
}
