package stream

import "fmt"

// Predicate decides whether a tuple passes a filter.
type Predicate func(Tuple) bool

// Filter is a selection operator: it emits exactly the tuples satisfying
// its predicate. It is stateless.
type Filter struct {
	name string
	pred Predicate
	cost float64
}

// NewFilter builds a filter with the given display name, predicate and
// simulated per-tuple cost.
func NewFilter(name string, cost float64, pred Predicate) *Filter {
	return &Filter{name: name, pred: pred, cost: cost}
}

// Name implements Transform.
func (f *Filter) Name() string { return f.name }

// Apply implements Transform.
func (f *Filter) Apply(t Tuple) []Tuple {
	if f.pred(t) {
		return []Tuple{t}
	}
	return nil
}

// ApplyBatch implements BatchTransform: one pass over the batch appending
// exactly the passing tuples, with no per-tuple slice allocation. A filter
// emits at most one tuple per input scanning forward, so out may alias in's
// backing array (out = in[:0]) for in-place filtering.
func (f *Filter) ApplyBatch(in []Tuple, out []Tuple) []Tuple {
	for _, t := range in {
		if f.pred(t) {
			out = append(out, t)
		}
	}
	return out
}

// Flush implements Transform; filters hold no state.
func (f *Filter) Flush() []Tuple { return nil }

// Stateless implements StatelessOp: filters keep no cross-tuple state.
func (f *Filter) Stateless() bool { return true }

// PreservesTuples implements TuplePreserver: a filter passes tuples through
// unchanged.
func (f *Filter) PreservesTuples() bool { return true }

// Punctuate implements Punctuator: a filter emits arriving tuples unchanged
// or not at all, so the input promise ("no future input <= ts") carries over
// to the output stream as-is. This is exactly what makes a highly selective
// filter's quiet output edge provably advance.
func (f *Filter) Punctuate(ts int64) (int64, bool) { return ts, true }

// Cost implements Transform.
func (f *Filter) Cost() float64 { return f.cost }

// OutSchema implements Transform; selection preserves the schema.
func (f *Filter) OutSchema(in *Schema) *Schema { return in }

// CmpOp is a comparison operator for field predicates.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String returns the operator's symbol.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("cmp(%d)", int(op))
	}
}

// FieldCmp returns a predicate comparing numeric field i against threshold.
func FieldCmp(i int, op CmpOp, threshold float64) Predicate {
	return func(t Tuple) bool {
		v := t.Float(i)
		switch op {
		case Eq:
			return v == threshold
		case Ne:
			return v != threshold
		case Lt:
			return v < threshold
		case Le:
			return v <= threshold
		case Gt:
			return v > threshold
		case Ge:
			return v >= threshold
		default:
			return false
		}
	}
}

// FieldEqString returns a predicate matching string field i == want.
func FieldEqString(i int, want string) Predicate {
	return func(t Tuple) bool { return t.Str(i) == want }
}

// And combines predicates conjunctively.
func And(preds ...Predicate) Predicate {
	return func(t Tuple) bool {
		for _, p := range preds {
			if !p(t) {
				return false
			}
		}
		return true
	}
}

// Or combines predicates disjunctively.
func Or(preds ...Predicate) Predicate {
	return func(t Tuple) bool {
		for _, p := range preds {
			if p(t) {
				return true
			}
		}
		return false
	}
}
