package stream

// Punctuation (a.k.a. heartbeats / low-watermarks) is the stream layer's
// liveness protocol: a punctuation marker with timestamp T (NewPunctuation)
// flows in-band through a pipeline and promises that no later REGULAR tuple
// on that stream will carry Ts <= T. A consumer that merges several streams
// — the staged executor's exchange merge — can therefore release buffered
// tuples from the streams that ARE producing without waiting for a head
// tuple from one that is quiet: the quiet stream's punctuation proves it has
// advanced past the candidate timestamp.
//
// The contract has three rules:
//
//  1. Markers are control entries, not data: they never enter
//     Transform.Apply, never count toward operator metering, and never
//     appear in query results.
//  2. An operator may forward (or emit) a punctuation T only if it can
//     prove, from the promises it has received on its inputs, that none of
//     its future emissions will carry Ts <= T. Per-tuple emission in this
//     codebase is timestamped at or above the arriving tuple (filters and
//     maps preserve Ts, windows stamp the triggering arrival's Ts, joins
//     stamp the max of the pair), so unary operators forward the input
//     promise unchanged and binary operators forward the minimum of their
//     two input promises. An operator implementing neither interface
//     swallows markers — always sound, merely less live — mirroring the
//     closed default the stage analysis applies to undeclared state.
//  3. End-of-stream Flush emissions are exempt: a drain may emit open state
//     below any previously forwarded punctuation. Drain ordering is owned
//     by the engine's Stop protocol (which orders flush tuples after every
//     regular tuple explicitly), not by the running stream's watermarks.
//
// The promise chain starts at the source: punctuation is only sound when
// each source's pushes are timestamp-ordered, which is the same precondition
// the exchange merge's ordering guarantee already assumes.

// Punctuator is implemented by unary transforms that participate in
// punctuation forwarding. Punctuate observes an input marker — the promise
// that no future input tuple will carry Ts <= ts — updates any watermark
// state, and returns the strongest promise the transform can now make about
// its own future emissions, with ok=false when it cannot promise anything
// yet.
type Punctuator interface {
	Punctuate(ts int64) (out int64, ok bool)
}

// BinaryPunctuator is Punctuator for two-input transforms: markers arrive
// tagged with the input side they came from, and the output promise is
// bounded by the weaker (older) side — a tuple arriving on the side that has
// not advanced can still trigger an emission at its own timestamp.
type BinaryPunctuator interface {
	PunctuateSide(side Side, ts int64) (out int64, ok bool)
}

// sideWatermarks tracks the newest punctuation seen on each input of a
// binary operator. Observe records one marker and returns the combined
// output promise: the minimum of the two sides, available only once both
// sides have punctuated (before that, the silent side could still deliver
// arbitrarily old tuples).
type sideWatermarks struct {
	seen [2]bool
	ts   [2]int64
}

func (w *sideWatermarks) Observe(side Side, ts int64) (int64, bool) {
	i := int(side)
	if !w.seen[i] || ts > w.ts[i] {
		w.seen[i] = true
		w.ts[i] = ts
	}
	if !w.seen[0] || !w.seen[1] {
		return 0, false
	}
	if w.ts[1] < w.ts[0] {
		return w.ts[1], true
	}
	return w.ts[0], true
}
