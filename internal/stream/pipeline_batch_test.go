package stream

import (
	"testing"
	"time"
)

// pipeSchemaTup builds the (sym, v) tuples the pipeline tests push.
func pipeTup(ts int64, v float64) Tuple { return NewTuple(ts, "s", v) }

// flushPipeline is a filter feeding a tumbling window sum: the window holds
// state, so Flush ordering is observable at the output.
func flushPipeline(buf int) *Pipeline {
	return NewPipeline(buf,
		NewFilter("pos", 1, FieldCmp(1, Gt, 0)),
		MustWindowAgg("sum3", 1, WindowSpec{Size: 3, Agg: AggSum, Field: 1, GroupBy: -1}),
	)
}

// TestPipelineFlushOrdering: closing the source flushes every stage in
// order, so the partial window's sum arrives after all full-window sums and
// the output channel closes.
func TestPipelineFlushOrdering(t *testing.T) {
	src := make(chan Tuple, 8)
	out := flushPipeline(2).Run(src)
	for i := 1; i <= 7; i++ { // 7 positive tuples: two full windows + 1 open
		src <- pipeTup(int64(i), float64(i))
	}
	close(src)
	got := Collect(out)
	want := []float64{1 + 2 + 3, 4 + 5 + 6, 7}
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Float(1) != w {
			t.Errorf("out[%d] = %g, want %g (flush must come last, in order)", i, got[i].Float(1), w)
		}
	}
}

// TestRunBatchesMatchesRun: the batch path computes exactly what the
// per-tuple path computes, including the trailing flush.
func TestRunBatchesMatchesRun(t *testing.T) {
	var tuples []Tuple
	for i := 1; i <= 20; i++ {
		tuples = append(tuples, pipeTup(int64(i), float64(i%5)-1))
	}

	want := Collect(flushPipeline(2).Run(SliceSource(tuples)))

	src := make(chan []Tuple, 4)
	out := flushPipeline(2).RunBatches(src)
	done := make(chan []Tuple)
	go func() { done <- Collect(Unbatch(out)) }()
	for i := 0; i < len(tuples); i += 6 {
		end := i + 6
		if end > len(tuples) {
			end = len(tuples)
		}
		src <- tuples[i:end]
	}
	close(src)
	got := <-done

	if len(got) != len(want) {
		t.Fatalf("batch path emitted %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Float(1) != want[i].Float(1) {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRunBatchesEmptyBatches: empty input batches flow through without
// producing output batches or wedging any stage.
func TestRunBatchesEmptyBatches(t *testing.T) {
	src := make(chan []Tuple, 4)
	out := flushPipeline(1).RunBatches(src)
	src <- nil
	src <- []Tuple{}
	src <- []Tuple{pipeTup(1, 1), pipeTup(2, 2), pipeTup(3, 3)}
	src <- []Tuple{}
	close(src)
	var batches [][]Tuple
	for b := range out {
		batches = append(batches, b)
	}
	if len(batches) != 1 {
		t.Fatalf("got %d output batches, want 1 (empty batches must not propagate)", len(batches))
	}
	if got := batches[0][0].Float(1); got != 6 {
		t.Fatalf("window sum = %g, want 6", got)
	}
}

// TestRunBatchesBatchLargerThanBuffer: channel buffering counts batches,
// not tuples, so one batch far wider than the buffer passes untruncated.
func TestRunBatchesBatchLargerThanBuffer(t *testing.T) {
	const n = 100 // buffer is 1 batch; this batch carries 100 tuples
	big := make([]Tuple, n)
	for i := range big {
		big[i] = pipeTup(int64(i), 1)
	}
	src := make(chan []Tuple, 1)
	out := flushPipeline(1).RunBatches(src)
	src <- big
	close(src)
	total := 0
	var sum float64
	for b := range out {
		for _, tu := range b {
			total++
			sum += tu.Float(1)
		}
	}
	// 33 full windows of sum 3 plus a flushed partial of 1.
	if total != 34 || sum != float64(n) {
		t.Fatalf("got %d tuples summing %g, want 34 summing %d", total, sum, n)
	}
}

// TestRunBatchesFlushAfterClose: a pipeline whose source closes with state
// still open emits exactly one flush batch, then closes the output — and
// does so promptly rather than hanging.
func TestRunBatchesFlushAfterClose(t *testing.T) {
	src := make(chan []Tuple, 1)
	out := flushPipeline(1).RunBatches(src)
	src <- []Tuple{pipeTup(1, 5)} // one tuple: window stays open
	close(src)

	type result struct {
		batches [][]Tuple
	}
	done := make(chan result)
	go func() {
		var r result
		for b := range out {
			r.batches = append(r.batches, b)
		}
		done <- r
	}()
	select {
	case r := <-done:
		if len(r.batches) != 1 || len(r.batches[0]) != 1 {
			t.Fatalf("flush produced %v, want exactly one single-tuple batch", r.batches)
		}
		if got := r.batches[0][0].Float(1); got != 5 {
			t.Fatalf("flushed sum = %g, want 5", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline did not flush and close after source close")
	}
}

// TestBatchUnbatchRoundtrip: the batch adapters preserve content and order,
// including a trailing partial batch.
func TestBatchUnbatchRoundtrip(t *testing.T) {
	var tuples []Tuple
	for i := 0; i < 11; i++ {
		tuples = append(tuples, pipeTup(int64(i), float64(i)))
	}
	got := Collect(Unbatch(Batch(SliceSource(tuples), 4)))
	if len(got) != len(tuples) {
		t.Fatalf("roundtrip: %d tuples, want %d", len(got), len(tuples))
	}
	for i := range tuples {
		if got[i].Ts != tuples[i].Ts {
			t.Fatalf("roundtrip[%d].Ts = %d, want %d", i, got[i].Ts, tuples[i].Ts)
		}
	}
}
