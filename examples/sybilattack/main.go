// Sybilattack reproduces the paper's Section V analysis end to end:
//
//  1. the Table II attack in which user 2 forges "user 3" to beat CAT+,
//  2. the same attack bouncing off CAT (which is sybil-strategyproof), and
//  3. the universal fair-share attack that defeats CAF on Example 1.
package main

import (
	"fmt"

	"repro/internal/auction"
	"repro/internal/gametheory"
	"repro/internal/query"
)

func main() {
	attack, capacity := gametheory.TableII(1e-3)

	fmt.Println("Table II: user 2 (bid 89, load 0.9) loses to user 1 (bid 100, load 1.0)")
	fmt.Println("on a capacity-1 server — unless she forges 'user 3' (bid 101ε, load ε).")
	fmt.Println()

	for _, mech := range []auction.Mechanism{auction.NewCATPlus(), auction.NewCAT()} {
		honest := mech.Run(attack.Original, capacity)
		attacked := mech.Run(attack.Attacked, capacity)
		gain := attack.Gain(mech, capacity)
		fmt.Printf("%s:\n", mech.Name())
		fmt.Printf("  honest:   winners %v, user 2 payoff $%.4f\n", honest.Winners, honest.UserPayoff(2))
		fmt.Printf("  attacked: winners %v, user 2 payoff $%.4f (covers the fake's bill)\n",
			attacked.Winners, attacked.UserPayoff(2))
		if gain > 0 {
			fmt.Printf("  -> attack SUCCEEDS: payoff gain $%.4f (Theorem 17)\n\n", gain)
		} else {
			fmt.Printf("  -> attack fails: gain $%.4f (Theorem 19: CAT is sybil-strategyproof)\n\n", gain)
		}
	}

	// The universal fair-share attack (Theorem 15): on Example 1, q3 loses
	// under CAF. By forging fakes that share her operators, her static
	// fair-share load collapses and she wins almost for free.
	pool, cap1 := query.Example1()
	caf := auction.NewCAF()
	fs, err := gametheory.FairShareAttack(pool, 2, 9, 1e-6)
	if err != nil {
		panic(err)
	}
	honest := caf.Run(pool, cap1)
	attacked := caf.Run(fs.Attacked, cap1)
	fmt.Println("Fair-share attack on CAF (Example 1, attacker q3 forging 9 fakes):")
	fmt.Printf("  honest:   winners %v, q3's user payoff $%.2f\n", honest.Winners, honest.UserPayoff(3))
	fmt.Printf("  attacked: winners %v, q3's user payoff $%.2f (gain $%.2f)\n",
		attacked.Winners, attacked.UserPayoff(3), fs.Gain(caf, cap1))
}
