// Stockmonitor runs the paper's motivating scenario (Sections I-II): several
// clients register continuous queries over a stock-quote stream and a news
// stream — two of them sharing a selection operator, exactly like Example
// 1's query plan — the CAT auction decides admission, and the admitted
// queries then actually execute on the shared Aurora-style engine: high-value
// trades are selected, news stories filtered, and the two streams joined on
// the company symbol.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/auction"
	"repro/internal/cloud"
	"repro/internal/stream"
)

var (
	stockSchema = stream.MustSchema(
		stream.Field{Name: "symbol", Kind: stream.KindString},
		stream.Field{Name: "price", Kind: stream.KindFloat},
	)
	newsSchema = stream.MustSchema(
		stream.Field{Name: "symbol", Kind: stream.KindString},
		stream.Field{Name: "headline", Kind: stream.KindString},
	)
)

func main() {
	center := cloud.New(auction.NewCAT(), 12)
	center.DeclareSource("stocks", stockSchema)
	center.DeclareSource("news", newsSchema)

	// q1: Alice — high-value trades (select A: price > 150).
	submit(center, cloud.Submission{
		User: 1, Name: "alice-high-trades", Bid: 55,
		Operators: []cloud.OperatorSpec{{Key: "sel-high", Load: 4}, {Key: "proj-alice", Load: 1}},
		Deploy: func(reg *cloud.SharedOps) error {
			src, err := reg.Source("stocks")
			if err != nil {
				return err
			}
			high := reg.Unary("sel-high", src, func() stream.Transform {
				return stream.NewFilter("sel-high", 4, stream.FieldCmp(1, stream.Gt, 150))
			})
			proj := reg.Unary("proj-alice", high, func() stream.Transform {
				return stream.NewProject("proj-alice", 1, stockSchema, 0, 1)
			})
			reg.Sink(proj)
			return nil
		},
	})

	// q2: Bob — join high-value trades (sharing operator A with Alice!) with
	// news on the symbol.
	submit(center, cloud.Submission{
		User: 2, Name: "bob-trade-news", Bid: 72,
		Operators: []cloud.OperatorSpec{{Key: "sel-high", Load: 4}, {Key: "join-news", Load: 2}},
		Deploy: func(reg *cloud.SharedOps) error {
			stocks, err := reg.Source("stocks")
			if err != nil {
				return err
			}
			news, err := reg.Source("news")
			if err != nil {
				return err
			}
			high := reg.Unary("sel-high", stocks, func() stream.Transform {
				return stream.NewFilter("sel-high", 4, stream.FieldCmp(1, stream.Gt, 150))
			})
			join := reg.Binary("join-news", high, news, func() stream.BinaryTransform {
				return stream.NewHashJoin("join-news", 2, 0, 0, 8)
			})
			reg.Sink(join)
			return nil
		},
	})

	// q3: Carol — average price over every trade, a heavy standalone query.
	submit(center, cloud.Submission{
		User: 3, Name: "carol-market-avg", Bid: 100,
		Operators: []cloud.OperatorSpec{{Key: "avg-all", Load: 6}, {Key: "sel-carol", Load: 4}},
		Deploy: func(reg *cloud.SharedOps) error {
			src, err := reg.Source("stocks")
			if err != nil {
				return err
			}
			avg := reg.Unary("avg-all", src, func() stream.Transform {
				return stream.MustWindowAgg("avg-all", 6, stream.WindowSpec{
					Size: 10, Agg: stream.AggAvg, Field: 1, GroupBy: -1,
				})
			})
			sel := reg.Unary("sel-carol", avg, func() stream.Transform {
				return stream.NewFilter("sel-carol", 4, stream.FieldCmp(1, stream.Gt, 100))
			})
			reg.Sink(sel)
			return nil
		},
	})

	report, err := center.ClosePeriod()
	if err != nil {
		panic(err)
	}
	fmt.Printf("auction (%s, capacity %.0f): admitted %d of %d, revenue $%.2f\n",
		report.Outcome.Mechanism, center.Capacity(), len(report.Admitted),
		len(report.Admitted)+len(report.Rejected), report.Revenue)
	for _, a := range report.Admitted {
		fmt.Printf("  + %-18s paid $%.2f (bid $%.2f)\n", a.Name, a.Payment, a.Bid)
	}
	for _, r := range report.Rejected {
		fmt.Printf("  - %-18s rejected\n", r)
	}

	// A day of market data flows through the shared plan.
	rng := rand.New(rand.NewSource(42))
	syms := []string{"ACME", "GLOBO", "INITECH"}
	for i := 0; i < 300; i++ {
		sym := syms[rng.Intn(len(syms))]
		price := 50 + rng.Float64()*200
		check(center.Push("stocks", stream.NewTuple(int64(i), sym, price)))
		if i%10 == 0 {
			check(center.Push("news", stream.NewTuple(int64(i), sym, "headline about "+sym)))
		}
	}

	fmt.Println("\nafter 300 quotes and 30 stories:")
	for _, name := range []string{"alice-high-trades", "bob-trade-news", "carol-market-avg"} {
		results := center.Results(name)
		fmt.Printf("  %-18s %3d result tuples", name, len(results))
		if len(results) > 0 {
			last := results[len(results)-1]
			fmt.Printf("  (last: %v)", last.Vals)
		}
		fmt.Println()
	}

	// The shared operator ran once for both Alice and Bob: the engine's
	// load report shows "sel-high" owned by both queries.
	fmt.Println("\nshared physical operators (engine load report):")
	for _, nl := range center.Engine().Loads() {
		if len(nl.Owners) > 1 {
			fmt.Printf("  %-10s processed %4d tuples for %v\n", nl.Name, nl.Tuples, nl.Owners)
		}
	}
}

func submit(c *cloud.Center, s cloud.Submission) {
	if err := c.Submit(s); err != nil {
		panic(err)
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
