// Cqlfrontend shows the DSMS center driven entirely by query text: clients
// write CQL, the compiler canonicalizes each physical operator into a key,
// and textually different but semantically identical sub-plans — here the
// WHERE clauses of Alice and Bob, written in different order and case —
// share one operator both in the auction (fair-share loads drop) and in the
// engine (the filter runs once per tuple).
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/auction"
	"repro/internal/cloud"
	"repro/internal/cql"
	"repro/internal/stream"
)

func main() {
	catalog := cql.Catalog{
		"trades": {
			Schema: stream.MustSchema(
				stream.Field{Name: "symbol", Kind: stream.KindString},
				stream.Field{Name: "price", Kind: stream.KindFloat},
				stream.Field{Name: "size", Kind: stream.KindInt},
			),
			Rate: 10,
		},
		"headlines": {
			Schema: stream.MustSchema(
				stream.Field{Name: "symbol", Kind: stream.KindString},
				stream.Field{Name: "text", Kind: stream.KindString},
			),
			Rate: 2,
		},
	}

	clients := []struct {
		user int
		name string
		text string
		bid  float64
	}{
		{1, "alice", "SELECT * FROM trades WHERE price > 100 AND symbol = 'ACME'", 60},
		{2, "bob", "select * from trades where symbol='ACME' and price>100", 55},
		{3, "carol", "SELECT AVG(price) FROM trades WINDOW 25 GROUP BY symbol", 70},
		{4, "dave", "SELECT * FROM trades JOIN headlines ON symbol WINDOW 8 WHERE price > 200", 45},
		{5, "erin", "SELECT COUNT(*) FROM trades WHERE size >= 5000 WINDOW 50", 20},
	}

	center := cloud.New(auction.NewCAT(), 70)
	for name, src := range catalog {
		center.DeclareSource(name, src.Schema)
	}
	fmt.Println("submissions:")
	for _, cl := range clients {
		comp := cql.MustCompile(cl.text, catalog, cql.DefaultCosts())
		fmt.Printf("  %-6s $%3.0f  %s\n", cl.name, cl.bid, comp.Query)
		for _, op := range comp.Operators {
			fmt.Printf("           op %-52s load %.1f\n", op.Key, op.Load)
		}
		err := center.Submit(cloud.Submission{
			User: cl.user, Name: cl.name, Bid: cl.bid,
			Operators: comp.Operators, Deploy: comp.Deploy,
		})
		if err != nil {
			panic(err)
		}
	}

	report, err := center.ClosePeriod()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nauction (CAT, capacity %.0f): revenue $%.2f, utilization %.0f%%\n",
		center.Capacity(), report.Revenue, 100*report.Utilization)
	for _, a := range report.Admitted {
		fmt.Printf("  + %-6s paid $%.2f\n", a.Name, a.Payment)
	}
	for _, r := range report.Rejected {
		fmt.Printf("  - %-6s rejected\n", r)
	}

	rng := rand.New(rand.NewSource(1))
	syms := []string{"ACME", "GLOBO"}
	for i := 0; i < 500; i++ {
		sym := syms[rng.Intn(2)]
		err := center.Push("trades", stream.NewTuple(int64(i), sym, 50+rng.Float64()*250, int64(rng.Intn(10000))))
		if err != nil {
			panic(err)
		}
		if i%25 == 0 {
			_ = center.Push("headlines", stream.NewTuple(int64(i), sym, "news about "+sym))
		}
	}

	fmt.Println("\nresults after 500 trades:")
	for _, cl := range clients {
		fmt.Printf("  %-6s %4d tuples\n", cl.name, len(center.Results(cl.name)))
	}
	fmt.Println("\nshared operators (engine view):")
	for _, nl := range center.Engine().Loads() {
		if len(nl.Owners) > 1 {
			fmt.Printf("  %-52s %4d tuples, owners %v\n", nl.Name, nl.Tuples, nl.Owners)
		}
	}
}
