// Quickstart walks the paper's Example 1 through the public API: three
// continuous queries sharing an operator, auctioned under CAR, CAF and CAT,
// reproducing the worked payments of Sections IV-A to IV-C ($10/$60,
// $30/$40 and $50/$60 for queries q1 and q2).
package main

import (
	"fmt"

	"repro/internal/auction"
	"repro/internal/query"
)

func main() {
	// Build the instance of Figure 2: operator A (load 4) is shared by q1
	// and q2; the server holds 10 units of load.
	b := query.NewBuilder()
	opA := b.AddOperator(4)
	opB := b.AddOperator(1)
	opC := b.AddOperator(2)
	opD := b.AddOperator(6)
	opE := b.AddOperator(4)
	q1 := b.AddQuery(55, opA, opB)
	q2 := b.AddQuery(72, opA, opC)
	q3 := b.AddQuery(100, opD, opE)
	pool := b.MustBuild()
	const capacity = 10

	fmt.Println("Example 1: three CQs, operator A shared by q1 and q2, capacity 10")
	fmt.Printf("  q1: total load %.0f, fair-share load %.2f, bid $%.0f\n", pool.TotalLoad(q1), pool.FairShareLoad(q1), pool.Bid(q1))
	fmt.Printf("  q2: total load %.0f, fair-share load %.2f, bid $%.0f\n", pool.TotalLoad(q2), pool.FairShareLoad(q2), pool.Bid(q2))
	fmt.Printf("  q3: total load %.0f, fair-share load %.2f, bid $%.0f\n\n", pool.TotalLoad(q3), pool.FairShareLoad(q3), pool.Bid(q3))

	for _, mech := range []auction.Mechanism{
		auction.NewCAR(),
		auction.NewCAF(),
		auction.NewCAT(),
		auction.NewCAFPlus(),
		auction.NewCATPlus(),
		auction.NewGV(),
	} {
		out := mech.Run(pool, capacity)
		fmt.Printf("%-5s admits %v  payments:", mech.Name(), out.Winners)
		for _, w := range out.Winners {
			fmt.Printf("  q%d pays $%.2f", w+1, out.Payment(w))
		}
		fmt.Printf("  (profit $%.2f, utilization %.0f%%)\n", out.Profit(), 100*out.Utilization())
	}
}
