// Subscriptions demonstrates the paper's Section VII extension: queries
// subscribing for different minimum lengths (day / week / month). Capacity
// is partitioned across categories, each category runs an independent CAT
// auction daily, and expiring subscriptions release their capacity back
// into the pool — the composed scheme stays bid-strategyproof because every
// component auction is.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/auction"
	"repro/internal/subscription"
)

func main() {
	mgr, err := subscription.NewManager(
		auction.NewCAT(),
		30, // total capacity
		subscription.Shares{
			subscription.Day:   0.5,
			subscription.Week:  0.3,
			subscription.Month: 0.2,
		},
	)
	if err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(11))
	categories := []subscription.Category{subscription.Day, subscription.Week, subscription.Month}

	for day := 0; day < 10; day++ {
		// A fresh batch of requests arrives each morning; weekly and monthly
		// subscribers bid proportionally more for the longer commitment.
		for i := 0; i < 8; i++ {
			cat := categories[rng.Intn(len(categories))]
			load := 1 + rng.Float64()*4
			bid := load * (1 + rng.Float64()*3) * float64(cat) / 2
			err := mgr.Submit(subscription.Request{
				User:     day*100 + i,
				Name:     fmt.Sprintf("q-d%d-%d", day, i),
				Bid:      bid,
				Category: cat,
				Operators: []subscription.OperatorSpec{
					{Key: fmt.Sprintf("op-%d-%d", day, i), Load: load},
				},
			})
			if err != nil {
				panic(err)
			}
		}

		report, err := mgr.RunDay()
		if err != nil {
			panic(err)
		}
		fmt.Printf("day %2d: free capacity %5.1f  admitted %d  expired %d  revenue $%7.2f\n",
			report.Day, report.FreeCapacity, len(report.Admitted), len(report.Expired), report.Revenue)
		for cat, out := range report.PerCategory {
			fmt.Printf("    %-5s auction: %d/%d admitted, profit $%.2f\n",
				cat, len(out.Winners), out.Pool().NumQueries(), out.Profit())
		}
	}
	fmt.Printf("\nactive subscriptions at close: %d, total revenue $%.2f\n",
		len(mgr.ActiveSubscriptions()), mgr.Revenue())
}
