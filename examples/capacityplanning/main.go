// Capacityplanning explores the paper's Section VII energy observation: an
// auction's profit is not monotone in operated capacity — beyond a point,
// extra capacity admits so many queries that the threshold price collapses —
// so once energy costs are charged per capacity unit, the net-optimal
// operating point sits strictly below full capacity.
package main

import (
	"fmt"

	"repro/internal/auction"
	"repro/internal/energy"
	"repro/internal/workload"
)

func main() {
	params := workload.PaperParams(3)
	params.NumQueries = 400
	params.MaxSharing = 20
	base := workload.MustGenerate(params)
	pool := base.MustInstance(8)

	cost := energy.CostModel{Idle: 50, PerUnit: 2.5}
	var capacities []float64
	for c := 500.0; c <= 6000; c += 500 {
		capacities = append(capacities, c)
	}

	fmt.Println("CAT profit vs energy cost across operated capacities")
	fmt.Println("capacity   profit   energy      net  admitted")
	points, err := energy.Sweep(auction.NewCAT(), pool, cost, capacities)
	if err != nil {
		panic(err)
	}
	for _, p := range points {
		fmt.Printf("%8.0f %8.0f %8.0f %8.0f  %8d\n", p.Capacity, p.Profit, p.EnergyCost, p.Net, p.Admitted)
	}

	best, err := energy.CapacitySearch(auction.NewCAT(), pool, cost, capacities)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nnet-optimal operating capacity: %.0f (net $%.0f, %d queries admitted)\n",
		best.Capacity, best.Net, best.Admitted)
	fmt.Println("— below the largest capacity: the paper's 'it might be more profitable")
	fmt.Println("  not to fully utilize the available capacity' in action.")
}
