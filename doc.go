// Package repro is a from-scratch Go reproduction of "Admission Control
// Mechanisms for Continuous Queries in the Cloud" (Al Moakar, Chrysanthis,
// Chung, Guirguis, Labrinidis, Neophytou, Pruhs — ICDE 2010): auction-based
// admission control for a for-profit data-stream-management cloud, the
// Aurora-style shared stream engine it runs on, and the paper's full
// experimental evaluation.
//
// # Architecture
//
// The system is layered around a single execution contract, engine.Executor
// (PushBatch / Advance / Results / Stats / Stop), with three interchangeable
// backends and the admission daemon driving whichever one is configured:
//
//	             submissions (query, bid)
//	                       │
//	                       ▼
//	┌─────────────────────────────────────────────┐
//	│ cloud.Center: auction admission + billing   │◄──┐
//	└───────────────┬─────────────────────────────┘   │
//	                │ winners                         │ measured
//	                ▼                                 │ per-operator
//	┌─────────────────────────────────────────────┐   │ loads
//	│ cloud.CompilePlan → shared engine.Plan      │   │ (NodeLoad)
//	└───────────────┬─────────────────────────────┘   │
//	                │                                 │
//	                ▼                                 │
//	┌─────────────────────────────────────────────┐   │
//	│ engine.Executor          ┌───────────────┐  │───┘
//	│  ├─ Engine    — sync ref │ engine.Shedder│  │
//	│  ├─ Runtime   — goroutine│  (shed.Shedder│  │
//	│  │   per op, batch edges │   installs    │  │
//	│  ├─ Sharded   — N×Runtime│   drop plan)  │  │
//	│  │   merged results+stats└───────▲───────┘  │
//	│  └─ Staged — staged dataflow:    │          │
//	│      ┌────────────┐ exchange     │          │
//	│      │ N×Runtime  ├═══(Ts-merge)═╪═►┌─────┐ │
//	│      │ keyed      │ repartition/ │  │1×   │ │
//	│      │ parallel   │ merge edges  │  │glob.│ │
//	│      │ prefix     ├═════════════►╪═►│stage│ │
//	│      └────────────┘              │  └─────┘ │
//	└───────────────┬─────────────────┬┴──────────┘
//	                │ Stats()         │ shed.Update(measured loads)
//	                ▼                 │
//	  sched.ValidateMeasured ── qos.Evaluate ── internal/shed
//	  per-query results, QoS report, shed ratios
//
// Batches are the unit of data movement end to end: sources push []Tuple,
// the concurrent executors carry whole batches per channel send, and
// stream.Pipeline mirrors the same batch path (RunBatches) for standalone
// operator chains. The Sharded executor partitions source tuples by a key
// across GOMAXPROCS shard runtimes, each running an independently compiled
// copy of the plan — results match the synchronous engine up to ordering
// whenever operator state is keyed no finer than the partition key, and
// StartSharded now verifies that via the plan's partition-key metadata
// instead of silently assuming field 0.
//
// # The hot path: operator fusion, batch pooling, zero-copy ingress
//
// Three mechanisms make batch execution cheap enough that the per-tuple cost
// of a stateless prefix is the operator work itself, not the machinery
// around it:
//
// Operator fusion (engine/fuse.go). At runtime start, maximal chains of
// stateless unary operators (filter→map→filter→…) collapse into one
// execution unit: the chain head's goroutine runs every constituent as a
// loop over the batch, in place, so a k-operator prefix costs one channel
// hop and one stats flush per batch instead of k. Fusion is an
// execution-time construct only — the Plan's node list, Analyze/stage
// split, shed owner resolution and per-node Stats see the unfused topology,
// and every constituent meters its own counters. stream.BatchTransform is
// the contract that makes in-place application sound: ApplyBatch(in, out)
// with out = in[:0] is legal exactly for forward-scanning operators that
// emit at most one tuple per input (Filter, Map declare it natively;
// stream.BatchApply adapts everything else per tuple). Punctuation markers
// keep their stream position — data runs through the chain as
// marker-delimited segments while the marker itself is rewritten by the
// composed punctuator chain.
//
// Batch pooling (engine/pool.go). Every batch buffer on the concurrent
// dataflow — ingress copies, operator outputs, fan-out clones — cycles
// through a shared sync.Pool under a single-owner rule (the full contract
// is on Executor.PushBatch in engine/executor.go): each buffer has exactly
// one owner, and the last consumer — the sink/tap boundary, an exchange
// merge after copying, an operator done with its input — returns it to the
// pool. Steady-state execution allocates no batch slices.
//
// Zero-copy ingress (engine.OwnedBatchPusher). PushOwnedBatch is PushBatch
// with the ownership arrow reversed: the caller hands the buffer to the
// executor and the defensive ingress copy disappears. A producer that
// leases buffers via engine.GetBatch, fills them and pushes them owned
// (dsmsd's pump does) runs a fully recycled, allocation-free ingress loop.
// A fused filter→map prefix fed this way executes with zero heap
// allocations per tuple end to end — pinned by TestFusedSteadyStateZeroAllocs
// and the BenchmarkFusedPrefix / BenchmarkPushOwnedBatch gates.
//
// # Columnar layout: struct-of-arrays on the fused hot path
//
// With ExecConfig.Columnar set, the fused hot path drops the boxed row
// layout entirely. stream.ColBatch is a schema-typed struct-of-arrays
// batch — one []int64 timestamp column plus one typed slice per field — so
// a filter or map kernel touches contiguous typed memory instead of chasing
// a []any pointer per value; punctuation rides out-of-band as a batch
// watermark (folding a marker to the end of its batch is sound: a
// punctuation is a promise about FUTURE tuples, so the fold delays only
// liveness, never correctness), and the boundary conversion back to rows
// re-emits it as one trailing in-band marker.
//
// A fused chain executes columnar when every constituent implements
// stream.ColumnarTransform (the structured operator forms: NewCmpFilter's
// comparison specs compile to selection-vector refinement with one gather;
// NewAddMap to an in-place add over one float column), accepts the input
// schema (ColumnarOK), and preserves the physical column layout through its
// OutSchema — qualification is per chain at runtime start, from schemas
// propagated source-to-sink through the plan. Everything else stays on the
// row path by conversion at its own boundary: stateful operators, exchange
// edges, sinks and taps keep the Tuple API, every consumer accepts either
// layout, and the sharded executors split columnar batches by key straight
// out of the typed columns through the same per-kind hash cores the boxed
// path uses, so a columnar tuple lands on exactly the shard its boxed twin
// would.
//
// Column buffers follow the same single-owner pooling as row batches,
// classed by physical layout (engine.GetColBatch / PutColBatch) so pools
// survive executor swaps across admission cycles; engine.OwnedColBatchPusher
// is the zero-copy columnar ingress (dsmsd's pump and the service plane's
// stream ingest both use it under -columnar), and under `go test -race` the
// pool guard turns double puts and use-after-put into immediate failures.
// Equivalence with the row path — results and per-node counters, across
// fusion on/off and all three concurrent executors — is continuously proven
// by the randomized harness's columnar arms; the layout win and the
// zero-alloc contract are pinned by BenchmarkColumnarPrefix and
// TestColumnarSteadyStateZeroAllocs.
//
// # Staged execution and exchange edges
//
// Plans that mix keyed and global operators run on the Staged executor
// (engine.StartStaged). Plan.Analyze reads each operator's partition
// metadata (stream.PartitionKeyer / BinaryPartitionKeyer, propagated
// through tuple-preserving stateless operators) and splits the plan into a
// maximal shardable prefix — filters, per-key windows, keyed equi-joins —
// and a global suffix: ungrouped windows, un-keyed joins, and anything
// downstream of them. The prefix runs as N shard runtimes partitioned on
// the inferred per-source keys; each boundary-crossing output becomes an
// exchange edge whose per-shard batch streams are merged into the single
// global-stage runtime.
//
// Ordering across the merge: within one exchange edge, the global stage
// receives tuples in nondecreasing timestamp order (ties break by shard
// index) provided each shard emits in nondecreasing timestamp order, which
// timestamp-ordered sources guarantee because every operator preserves or
// maximizes timestamps. With strictly increasing source timestamps the
// global stage therefore sees exactly the synchronous Engine's tuple
// sequence and produces tuple-identical results. Across different exchange
// edges (and relative to direct source feeds into the global stage) no
// order is guaranteed — the same independence Runtime's channel edges
// already have. The merge buffers without blocking shards, so exchange
// results are complete (and merged stats final) only after Stop; merged
// Stats map both stages back onto the analyzed plan's node IDs, and
// OfferedLoad reconstruction runs over the full staged topology so shed
// accounting stays correct through the exchange.
//
// Punctuation and quiet edges: the merge releases a tuple once every other
// shard either shows its next tuple, has closed, or has PUNCTUATED past the
// candidate timestamp. Punctuation markers (stream.NewPunctuation) are
// in-band control entries promising that no later regular tuple on the
// stream carries a timestamp at or below theirs; the staged executor emits
// one per source heartbeat (StagedConfig.Heartbeat, default every pushed
// batch, at one below the batch's highest timestamp — the strongest promise
// a nondecreasing source supports — to every shard), and each
// operator re-derives the promise for its own output: who emits — the
// source heartbeat starts the chain; who forwards — Filter, Map and
// WindowAgg forward the input promise unchanged (every mid-run emission is
// stamped at or above the triggering arrival, which the input promise
// bounds), while Union and HashJoin forward the MINIMUM across their two
// input promises, and only once both sides have punctuated (the soundness
// rule for stateful and binary operators: an operator may punctuate T only
// when no in-flight or retained state below T can still reach its output
// mid-run — end-of-stream Flush is exempt, because Stop's drain protocol
// orders flush tuples after all regular tuples explicitly). Operators
// declaring nothing swallow markers, the same closed default the stage
// analysis applies to undeclared state. A shard that never emits on an
// edge — a highly selective filter, a key distribution that starves the
// shard — therefore no longer holds the merge until Stop: its forwarded
// punctuation advances the merge's per-shard low-watermark and the hot
// shards' tuples release mid-run, bounded by the heartbeat cadence, so
// mid-run Stats attribute the global stage's true load (dsmsd's mid-period
// replanning depends on this). Push-side watermarks derived at the ingress
// alone would be unsound — tuples still in flight inside the shard
// pipeline can sit below them — which is why the promise travels in-band
// through every operator. Markers never enter Transform.Apply, never count
// in Stats, and never appear in Results; with heartbeats disabled
// (Heartbeat < 0) the merge degrades to the original hold-until-Stop
// semantics.
//
// # Elasticity
//
// The sharded executors' width is a run-time knob, not a start-time
// constant: Sharded and Staged implement engine.Resharder, whose
// Reshard(n) changes the shard count at a period boundary. The boundary
// protocol never loses or duplicates a tuple and never restarts an open
// window:
//
//  1. quiesce — the closing epoch's shard runtimes drain every in-flight
//     batch but do NOT flush: keyed operator state (open windows, join
//     buffers) stays inside the operator instances (Runtime.Quiesce);
//  2. drain the exchanges — the retiring mergers hand every already-emitted
//     tuple to the global stage, which runs on across the boundary (its
//     state is not keyed, so it never moves);
//  3. rebalance — source tuples route through a 256-bucket partition map
//     that counts per-bucket traffic; the reshard reassigns buckets to the
//     n new shards heaviest-first (LPT), so an observed-hot key ends up
//     isolated on its own shard instead of striped blindly;
//  4. move state — every keyed-stateful operator exports its per-key state
//     (stream.KeyedStateMover, implemented by WindowAgg and HashJoin) and
//     each key's bundle is imported into the structurally identical
//     operator on the key's new owner shard;
//  5. resume — n fresh runtimes (and fresh exchange merges) take over;
//     tuples pushed after Reshard returns flow to the new epoch.
//
// State movement guarantees: a key's window buffer and join windows resume
// on the new shard exactly where the old shard left them, because the key's
// future tuples hash to the same owner the exported state was routed to.
// Stats, Results and Dropped aggregate across epochs (retired counters fold
// into the totals), and ShardStats tags per-shard loads with their stable
// (Epoch, Shard) identity so skew logs stay meaningful across reshards.
// Operators that declare a partition key but no state movement make
// Reshard fail up front, leaving the running epoch untouched.
//
// cmd/dsmsd closes the loop with -elastic: each mid-period monitoring
// sample compares measured offered load per shard against high/low water
// marks (and per-shard skew against a 2x threshold) and grows, shrinks or
// rebalances the staged backend at that boundary, logged like its shed and
// replan decisions.
//
// The regression net over all of this is internal/engine/equiv_test.go: a
// randomized harness generating plans (filter/map/window/join/union over
// 1–3 sources), batch schedules and mid-run reshards, asserting
// tuple-identical results and per-node counters against the synchronous
// Engine oracle.
//
// # Backpressure and load shedding
//
// Channel edges between operators are bounded (RuntimeConfig.Buf batches
// per edge), so by default a slow operator exerts backpressure: its input
// channel fills, upstream senders block, and eventually PushBatch itself
// stalls the source — lossless, but an overloaded plan backs up every
// shard. Installing an engine.Shedder flips that contract to Aurora-style
// graceful degradation at the source-ingress edges: the planned fraction
// of each query's tuples is dropped before the first operator runs, and
// ingress channel sends become non-blocking, shedding the overflow instead
// of stalling the feed. Interior edges keep blocking sends so operator
// state stays consistent; pressure propagates to the ingress, where the
// shedder absorbs it. Drops are metered per node (NodeLoad.ShedTuples,
// NodeLoad.ShedUtilityLost) across all three executors, merged across
// shards like every other counter.
//
// The internal/shed package decides what to drop: given measured loads and
// capacity, it ranks admitted queries by QoS utility slope (utility lost
// per unit of reclaimed capacity, from each query's qos.Graph) and drains
// the cheapest queries first — or uniformly at random as the control
// baseline. The plan is versioned; executors re-resolve cached ratios when
// the generation moves.
//
// cmd/dsmsd closes the paper's economic loop: each period's auction winners
// are compiled into one shared plan, executed over a day of market data,
// and the *measured* per-operator costs (Executor.Stats) become the loads
// the next period's auction prices — "load can be reasonably approximated
// by the system", as a running feedback loop rather than an assumption.
// With -shed utility|random the same measurements also drive the shedding
// loop above, and -rate overloads the executed period relative to the
// rate the auction priced.
//
// # Distributed execution: worker mode over framed TCP
//
// The staged split also runs across machines. engine.StartDistributed is
// the coordinator half: the same prefix/suffix carve as Staged, but each
// parallel shard lives on a remote worker (engine.RemoteShardHost) while
// everything order-sensitive stays local — ingress validation, partition
// routing, the per-shard low-watermark exchange merges, the global-stage
// runtime, and the end-of-run drain that interleaves the shards' flush
// emissions back into the synchronous drain order. internal/cluster is the
// transport: a "DSMW" handshake, then length-prefixed frames — one-way push
// frames coordinator→worker, asynchronous exchange/sink frames back, and
// one-outstanding control requests (deploy, quiesce, export, resume, drain,
// counters, stop) each answered by exactly one ok/err reply. Tuple batches
// cross the wire in the staging record codec, not gob, because exchange
// edges carry the punctuation markers the merge's low-watermarks order by
// and a tuple's gob encoding deliberately drops the marker flag; control
// payloads (deploy specs, exported keyed state) are gob. Because each
// connection has a single read loop, TCP order makes the worker's quiesce
// reply a barrier: every exchange frame the shard emitted while draining is
// already delivered when Quiesce returns. Workers are stateless between
// deployments — the deploy payload ships the source catalog and the
// admitted queries' CQL, and the worker recompiles them into a plan
// structurally identical to the coordinator's (CQL compilation is
// canonical), which is what shard-state export/resume requires.
//
// The fault contract is explicit. Failure-free runs are exactly-once and
// tuple-identical to the synchronous Engine. Every routed sub-batch is
// appended to an in-memory per-shard replay log before it is pushed, and
// the log — not the worker — is the acknowledgement: push frames are
// fire-and-forget. When a worker dies (connection loss fires its Dead
// channel) the coordinator quiesces the survivors, discards the dead
// shard's undelivered merge backlog, folds the dead shard's keyed-state
// baseline share back in under the OLD partition map, rebalances the map
// over the survivors, resumes them on a fresh epoch, and replays the dead
// shard's log through normal routing. No acknowledged tuple is lost;
// tuples the merge had already released may be re-released by replay, so
// delivery across a failure is at-least-once — duplicates possible, loss
// not — and a replayed tuple can land below an already-promised watermark,
// which the lateArrivals counter (surfaced as late_arrivals in /v1/stats)
// makes observable rather than silent. Logs truncate at every epoch
// boundary (Checkpoint or recovery), bounding them by checkpoint cadence.
// `dsmsd worker` runs one worker; `dsmsd serve -workers a,b` makes the
// service plane the coordinator, with per-worker liveness rows in
// /v1/stats and graceful degradation to the local staged executor when no
// worker link survives.
//
// # The tenant service plane
//
// internal/server turns the same machinery into a live, multi-tenant
// service: `dsmsd serve` runs a long-lived HTTP/JSON API where tenants
// submit CQL query templates with bids and QoS graphs, admission cycles
// auction the candidate set against capacity, winning plans deploy on the
// staged executor, and results stream back per query over Server-Sent
// Events through the internal/subscription hub — the paper's for-profit
// DSMS as an actual service rather than a simulation. Where `dsmsd sim`
// resets the world every day, the service plane runs one continuous
// admission cycle loop (POST /v1/admission/run, or -cycle for a timer):
// each cycle settles the running executor, feeds the MEASURED per-operator
// loads into the next auction's prices (the same closed loop as sim), bills
// metered usage (MeterPrice × measured load per query) onto the
// billing.Ledger next to the admission payments, and redeploys the new
// winner set. Between cycles, tenants push tuples into the declared
// streams and the deployed plan's sink taps publish each result batch into
// the hub, which fans it out to subscribers with a bounded replay ring per
// query and drop-oldest (counted, never blocking) delivery to slow
// consumers — backpressure can never reach the executor.
//
// The API surface:
//
//	POST /v1/tenants                            register {"name": ...} → {"user": N}
//	POST /v1/queries                            submit CQL + bid + QoS
//	GET  /v1/queries[?tenant=T]                 list queries and statuses
//	GET  /v1/queries/{tenant}/{name}            one query: status, payment, loads
//	GET  /v1/queries/{tenant}/{name}/results    stream results (SSE; ?max=N to bound)
//	POST /v1/streams/{source}                   push tuples {"tuples": [{"ts", "vals"}]}
//	POST /v1/admission/run                      run one admission cycle now
//	GET  /v1/load /v1/prices /v1/invoices /v1/stats /v1/healthz
//
// A query submission and its streamed result:
//
//	POST /v1/queries
//	{"tenant": "acme", "name": "alerts", "bid": 10,
//	 "cql": "SELECT * FROM stocks WHERE price > 100",
//	 "qos": [{"latency": 2, "utility": 1}, {"latency": 20, "utility": 0}]}
//	→ 201 {"id": "acme/alerts", "status": "pending", "declared_load": ...}
//
//	GET /v1/queries/acme/alerts/results        (after an admission cycle)
//	data: [{"ts": 42, "vals": ["ACME", 150.5, 10]}]
//
// The root package holds the benchmark harness (bench_test.go) that
// regenerates every table and figure in the paper's Section VI; the library
// lives under internal/ (see DESIGN.md for the module map), the runnable
// tools under cmd/, and the worked scenarios under examples/.
package repro
