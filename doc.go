// Package repro is a from-scratch Go reproduction of "Admission Control
// Mechanisms for Continuous Queries in the Cloud" (Al Moakar, Chrysanthis,
// Chung, Guirguis, Labrinidis, Neophytou, Pruhs — ICDE 2010): auction-based
// admission control for a for-profit data-stream-management cloud, the
// Aurora-style shared stream engine it runs on, and the paper's full
// experimental evaluation.
//
// # Architecture
//
// The system is layered around a single execution contract, engine.Executor
// (PushBatch / Advance / Results / Stats / Stop), with three interchangeable
// backends and the admission daemon driving whichever one is configured:
//
//	              submissions (query, bid)
//	                        │
//	                        ▼
//	 ┌─────────────────────────────────────────────┐
//	 │ cloud.Center: auction admission + billing   │◄──┐
//	 └───────────────┬─────────────────────────────┘   │
//	                 │ winners                         │ measured
//	                 ▼                                 │ per-operator
//	 ┌─────────────────────────────────────────────┐   │ loads
//	 │ cloud.CompilePlan → shared engine.Plan      │   │ (NodeLoad)
//	 └───────────────┬─────────────────────────────┘   │
//	                 │                                 │
//	                 ▼                                 │
//	 ┌─────────────────────────────────────────────┐   │
//	 │ engine.Executor                             │───┘
//	 │  ├─ Engine    — synchronous reference,      │
//	 │  │             transition phase, held caps  │
//	 │  ├─ Runtime   — goroutine per operator,     │
//	 │  │             batch ([]Tuple) channel edges│
//	 │  └─ Sharded   — N×Runtime, hash-partitioned │
//	 │                sources, merged results+stats│
//	 └───────────────┬─────────────────────────────┘
//	                 │ Stats() → sched.ValidateMeasured / qos.Evaluate
//	                 ▼
//	        per-query results, QoS report
//
// Batches are the unit of data movement end to end: sources push []Tuple,
// the concurrent executors carry whole batches per channel send, and
// stream.Pipeline mirrors the same batch path (RunBatches) for standalone
// operator chains. The Sharded executor partitions source tuples by a key
// (by default the first field) across GOMAXPROCS shard runtimes, each
// running an independently compiled copy of the plan — results match the
// synchronous engine up to ordering whenever operator state is keyed no
// finer than the partition key.
//
// cmd/dsmsd closes the paper's economic loop: each period's auction winners
// are compiled into one shared plan, executed over a day of market data,
// and the *measured* per-operator costs (Executor.Stats) become the loads
// the next period's auction prices — "load can be reasonably approximated
// by the system", as a running feedback loop rather than an assumption.
//
// The root package holds the benchmark harness (bench_test.go) that
// regenerates every table and figure in the paper's Section VI; the library
// lives under internal/ (see DESIGN.md for the module map), the runnable
// tools under cmd/, and the worked scenarios under examples/.
package repro
