// Package repro is a from-scratch Go reproduction of "Admission Control
// Mechanisms for Continuous Queries in the Cloud" (Al Moakar, Chrysanthis,
// Chung, Guirguis, Labrinidis, Neophytou, Pruhs — ICDE 2010): auction-based
// admission control for a for-profit data-stream-management cloud, the
// Aurora-style shared stream engine it runs on, and the paper's full
// experimental evaluation.
//
// The root package holds the benchmark harness (bench_test.go) that
// regenerates every table and figure in the paper's Section VI; the library
// lives under internal/ (see DESIGN.md for the module map), the runnable
// tools under cmd/, and the worked scenarios under examples/.
package repro
