// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section VI), plus ablations for the design choices DESIGN.md calls out.
//
// Figure/table benches run a scaled-down sharing sweep per iteration and
// report the headline quantity with b.ReportMetric, so `go test -bench=.`
// prints both the runtime and the reproduced measurement. cmd/auctionsim
// prints the full series (use -full for the paper's 50×2000 scale).
package repro

import (
	"testing"

	"repro/internal/auction"
	"repro/internal/experiments"
	"repro/internal/gametheory"
	"repro/internal/query"
	"repro/internal/workload"
)

// benchConfig is the per-iteration sweep scale: large enough to show the
// paper's shapes, small enough for benchmarking.
func benchConfig() experiments.Config {
	return experiments.Config{
		Sets:       2,
		NumQueries: 300,
		Degrees:    []int{1, 4, 8, 12, 16, 20},
		MaxSharing: 20,
		BaseSeed:   1,
	}
}

// benchInstance builds one paper-shaped instance for the Table IV runtime
// benches: 2000 queries at sharing degree 30, the scale of the paper's
// runtime table.
func benchInstance(b *testing.B) (*query.Pool, float64) {
	b.Helper()
	params := workload.PaperParams(1)
	base, err := workload.Generate(params)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := base.Instance(30)
	if err != nil {
		b.Fatal(err)
	}
	return pool, 15000
}

func sweep(b *testing.B, capacityEq float64) *experiments.SweepResult {
	b.Helper()
	cfg := benchConfig()
	res, err := experiments.SharingSweep(cfg, experiments.Mechanisms(7), cfg.ScaleCapacity(capacityEq))
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig4aAdmissionRate regenerates Figure 4(a): admission rate vs
// sharing degree at capacity 15,000-equivalent. Reported metrics: CAT's and
// Two-price's admission percentage at the highest sharing degree.
func BenchmarkFig4aAdmissionRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sweep(b, 15000)
		last := float64(20)
		b.ReportMetric(res.Admission.Mean("CAT", last), "CAT-adm-%")
		b.ReportMetric(res.Admission.Mean("Two-price", last), "TP-adm-%")
	}
}

// BenchmarkFig4bUserPayoff regenerates Figure 4(b): total user payoff at
// capacity 15,000-equivalent.
func BenchmarkFig4bUserPayoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sweep(b, 15000)
		last := float64(20)
		b.ReportMetric(res.Payoff.Mean("CAF+", last), "CAF+-payoff")
		b.ReportMetric(res.Payoff.Mean("Two-price", last), "TP-payoff")
	}
}

// benchProfitFigure regenerates one of Figures 4(c)-(f): profit vs sharing
// at the given capacity. Reported: CAT and Two-price profit at degree 1 and
// at the highest degree (the crossover endpoints).
func benchProfitFigure(b *testing.B, capacityEq float64) {
	for i := 0; i < b.N; i++ {
		res := sweep(b, capacityEq)
		b.ReportMetric(res.Profit.Mean("CAT", 1), "CAT-deg1")
		b.ReportMetric(res.Profit.Mean("Two-price", 1), "TP-deg1")
		b.ReportMetric(res.Profit.Mean("CAT", 20), "CAT-deg20")
		b.ReportMetric(res.Profit.Mean("Two-price", 20), "TP-deg20")
	}
}

// BenchmarkFig4cProfitCap5k regenerates Figure 4(c).
func BenchmarkFig4cProfitCap5k(b *testing.B) { benchProfitFigure(b, 5000) }

// BenchmarkFig4dProfitCap10k regenerates Figure 4(d).
func BenchmarkFig4dProfitCap10k(b *testing.B) { benchProfitFigure(b, 10000) }

// BenchmarkFig4eProfitCap15k regenerates Figure 4(e).
func BenchmarkFig4eProfitCap15k(b *testing.B) { benchProfitFigure(b, 15000) }

// BenchmarkFig4fProfitCap20k regenerates Figure 4(f).
func BenchmarkFig4fProfitCap20k(b *testing.B) { benchProfitFigure(b, 20000) }

// BenchmarkFig5Manipulation regenerates Figure 5: CAR under truthful,
// moderate-lying and aggressive-lying workloads vs the strategyproof trio.
func BenchmarkFig5Manipulation(b *testing.B) {
	cfg := benchConfig()
	cfg.Degrees = []int{8, 12, 16, 20} // where liars exist
	for i := 0; i < b.N; i++ {
		res, err := experiments.ManipulationSweep(cfg, cfg.ScaleCapacity(5000), 7)
		if err != nil {
			b.Fatal(err)
		}
		var honest, aggressive float64
		for _, x := range res.Profit.Xs() {
			honest += res.Profit.Mean("CAR", x)
			aggressive += res.Profit.Mean("CAR-AL", x)
		}
		b.ReportMetric(honest, "CAR-profit")
		b.ReportMetric(aggressive, "CAR-AL-profit")
	}
}

// BenchmarkUtilization regenerates the Section VI-B utilization
// observation at a binding capacity.
func BenchmarkUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sweep(b, 5000)
		b.ReportMetric(res.Utilization.Mean("CAT", 1), "CAT-util-%")
		b.ReportMetric(res.Utilization.Mean("Two-price", 1), "TP-util-%")
	}
}

// BenchmarkTable1Properties regenerates Table I: the verification run over
// the property matrix. Reported: number of strategyproof and sybil-immune
// mechanisms found (paper: 6 of 7 and 2 — CAT plus GV, which Table I
// omits). Two probe instances suffice to expose every vulnerability.
func BenchmarkTable1Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PropertyMatrix(2, 7)
		if err != nil {
			b.Fatal(err)
		}
		sp, si := 0, 0
		for _, r := range rows {
			if r.Strategyproof {
				sp++
			}
			if r.SybilImmune {
				si++
			}
		}
		b.ReportMetric(float64(sp), "strategyproof")
		b.ReportMetric(float64(si), "sybil-immune")
	}
}

// BenchmarkTable2SybilAttack regenerates Table II: the attacker's payoff
// gain against CAT+ (≈ 89) and against CAT (≤ 0).
func BenchmarkTable2SybilAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		attack, capacity := gametheory.TableII(1e-3)
		b.ReportMetric(attack.Gain(auction.NewCATPlus(), capacity), "gain-CAT+")
		b.ReportMetric(attack.Gain(auction.NewCAT(), capacity), "gain-CAT")
	}
}

// Table IV: per-mechanism auction runtime on a paper-scale instance (2000
// queries, capacity 15,000, sharing degree 30). ns/op is the reproduced
// cell; the paper's ordering — Random < GV < Two-price < CAF ≈ CAT ≪ CAT+ <
// CAF+ — must hold.
func benchTableIV(b *testing.B, m auction.Mechanism) {
	pool, capacity := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := m.Run(pool, capacity)
		if len(out.Payments) == 0 {
			b.Fatal("empty outcome")
		}
	}
}

// BenchmarkTableIVRandom reproduces Table IV's Random row.
func BenchmarkTableIVRandom(b *testing.B) { benchTableIV(b, auction.NewRandom(7)) }

// BenchmarkTableIVGV reproduces Table IV's GV row.
func BenchmarkTableIVGV(b *testing.B) { benchTableIV(b, auction.NewGV()) }

// BenchmarkTableIVTwoPrice reproduces Table IV's Two-price row.
func BenchmarkTableIVTwoPrice(b *testing.B) { benchTableIV(b, auction.NewTwoPrice(7)) }

// BenchmarkTableIVCAF reproduces Table IV's CAF row.
func BenchmarkTableIVCAF(b *testing.B) { benchTableIV(b, auction.NewCAF()) }

// BenchmarkTableIVCAFPlus reproduces Table IV's CAF+ row.
func BenchmarkTableIVCAFPlus(b *testing.B) { benchTableIV(b, auction.NewCAFPlus()) }

// BenchmarkTableIVCAT reproduces Table IV's CAT row.
func BenchmarkTableIVCAT(b *testing.B) { benchTableIV(b, auction.NewCAT()) }

// BenchmarkTableIVCATPlus reproduces Table IV's CAT+ row.
func BenchmarkTableIVCATPlus(b *testing.B) { benchTableIV(b, auction.NewCATPlus()) }

// BenchmarkAblationCapacityCheck isolates the incremental sharing-aware
// capacity check (paper Algorithms 1-2) against a naive variant that admits
// by each query's standalone total load. Reported: admitted counts — the
// sharing-aware check admits strictly more at high sharing degrees.
func BenchmarkAblationCapacityCheck(b *testing.B) {
	params := workload.PaperParams(1)
	params.NumQueries = 500
	base, err := workload.Generate(params)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := base.Instance(30)
	if err != nil {
		b.Fatal(err)
	}
	capacity := 15000.0 * 500 / 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aware := auction.NewCAT().Run(pool, capacity)
		naive := naiveCATAdmitted(pool, capacity)
		b.ReportMetric(float64(len(aware.Winners)), "aware-admits")
		b.ReportMetric(float64(naive), "naive-admits")
	}
}

// naiveCATAdmitted runs CAT's selection with a capacity check that ignores
// operator sharing (each query charged its full C_T) — the ablated variant.
func naiveCATAdmitted(p *query.Pool, capacity float64) int {
	n := p.NumQueries()
	type cand struct {
		id  query.QueryID
		pri float64
	}
	cands := make([]cand, n)
	for i := 0; i < n; i++ {
		id := query.QueryID(i)
		cands[i] = cand{id, p.Bid(id) / p.TotalLoad(id)}
	}
	// Insertion-free selection: repeatedly take max (n is small).
	admitted, used := 0, 0.0
	taken := make([]bool, n)
	for {
		best := -1
		for i, c := range cands {
			if !taken[i] && (best == -1 || c.pri > cands[best].pri) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		taken[best] = true
		load := p.TotalLoad(cands[best].id)
		if used+load > capacity {
			break
		}
		used += load
		admitted++
	}
	return admitted
}

// BenchmarkAblationStopRule isolates prefix-stop (CAF) against
// skip-and-continue (CAF+) on one instance: the skip rule admits more but
// collapses the threshold price; the runtime gap is Table IV's.
func BenchmarkAblationStopRule(b *testing.B) {
	// A binding instance (low sharing) so the threshold price is positive
	// and the prefix-vs-skip profit difference is visible.
	params := workload.PaperParams(1)
	base, err := workload.Generate(params)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := base.Instance(2)
	if err != nil {
		b.Fatal(err)
	}
	capacity := 10000.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prefix := auction.NewCAF().Run(pool, capacity)
		skip := auction.NewCAFPlus().Run(pool, capacity)
		b.ReportMetric(prefix.Profit(), "prefix-profit")
		b.ReportMetric(skip.Profit(), "skip-profit")
		b.ReportMetric(float64(len(prefix.Winners)), "prefix-admits")
		b.ReportMetric(float64(len(skip.Winners)), "skip-admits")
	}
}

// BenchmarkAblationTwoPriceStep3 isolates Algorithm 3's Step 3 (tie-set
// re-packing): with it off (Theorem 12's polynomial variant) expected
// profit may drop by up to d·h on tie-heavy instances.
func BenchmarkAblationTwoPriceStep3(b *testing.B) {
	// Integer-bid workload: heavy bid duplication makes Step 3 matter.
	params := workload.PaperParams(1)
	params.NumQueries = 500
	params.BidMode = workload.BidZipf
	base, err := workload.Generate(params)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := base.Instance(10)
	if err != nil {
		b.Fatal(err)
	}
	capacity := 5000.0 * 500 / 2000
	withStep3 := auction.NewTwoPrice(7)
	without := auction.NewTwoPrice(7)
	without.Step3Limit = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(withStep3.Run(pool, capacity).Profit(), "with-step3")
		b.ReportMetric(without.Run(pool, capacity).Profit(), "without-step3")
	}
}
