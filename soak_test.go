package repro

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/auction"
	"repro/internal/cloud"
	"repro/internal/cql"
	"repro/internal/market"
	"repro/internal/sched"
)

// TestSoakManyPeriods drives the full stack through 30 subscription periods
// with client churn, CQL-compiled queries, live market data, engine
// transitions and billing, asserting system-wide invariants at every step:
// auction feasibility, schedulability of the admitted set, billing
// consistency and no tuple leakage to rejected queries.
func TestSoakManyPeriods(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(99))
	catalog := cql.Catalog{
		"stocks": {Schema: market.QuoteSchema, Rate: 5},
		"news":   {Schema: market.NewsSchema, Rate: 1},
	}
	feed := market.MustFeed(99, "AAA", "BBB", "CCC")

	center := cloud.New(auction.NewCAT(), 60)
	center.DeclareSource("stocks", market.QuoteSchema)
	center.DeclareSource("news", market.NewsSchema)

	templates := []string{
		"SELECT * FROM stocks WHERE price > %d",
		"SELECT avg(price) FROM stocks WHERE symbol = '%s' WINDOW 20",
		"SELECT * FROM stocks JOIN news ON symbol WINDOW 8 WHERE price > %d",
		"SELECT COUNT(*) FROM stocks WINDOW 50",
	}
	symbols := feed.Symbols()

	totalRevenue := 0.0
	for period := 0; period < 30; period++ {
		population := 6 + rng.Intn(10)
		names := make(map[string]bool)
		for i := 0; i < population; i++ {
			tmpl := templates[rng.Intn(len(templates))]
			var text string
			switch {
			case tmpl == templates[1]:
				text = fmt.Sprintf(tmpl, symbols[rng.Intn(len(symbols))])
			case tmpl == templates[3]:
				text = tmpl
			default:
				text = fmt.Sprintf(tmpl, 100+25*rng.Intn(5))
			}
			comp, err := cql.Compile(mustParse(t, text), catalog, cql.DefaultCosts())
			if err != nil {
				t.Fatalf("period %d: %v", period, err)
			}
			name := fmt.Sprintf("q%d-%d", period, i)
			names[name] = true
			err = center.Submit(cloud.Submission{
				User: i + 1, Name: name, Bid: 5 + rng.Float64()*95,
				Operators: comp.Operators, Deploy: comp.Deploy,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		report, err := center.ClosePeriod()
		if err != nil {
			t.Fatalf("period %d: %v", period, err)
		}
		if report.Utilization > 1+1e-9 {
			t.Fatalf("period %d: utilization %v above 1", period, report.Utilization)
		}
		// The admitted set must be schedulable at the execution layer.
		if _, err := sched.ValidateAdmission(report.Outcome, 200, sched.RoundRobin{}); err != nil {
			t.Fatalf("period %d: %v", period, err)
		}
		totalRevenue += report.Revenue

		for i := 0; i < 300; i++ {
			if err := center.Push("stocks", feed.Quote()); err != nil {
				t.Fatal(err)
			}
			if i%10 == 0 {
				if err := center.Push("news", feed.Headline()); err != nil {
					t.Fatal(err)
				}
			}
		}
		center.Engine().Advance(300)
		for _, rej := range report.Rejected {
			if got := len(center.Results(rej)); got != 0 {
				t.Fatalf("period %d: rejected query %s produced %d tuples", period, rej, got)
			}
		}
	}
	if got := center.Ledger().Revenue(-1); math.Abs(got-totalRevenue) > 1e-6 {
		t.Errorf("ledger revenue %v != accumulated %v", got, totalRevenue)
	}
	if center.Period() != 30 {
		t.Errorf("period = %d, want 30", center.Period())
	}
}

func mustParse(t *testing.T, text string) *cql.Query {
	t.Helper()
	q, err := cql.Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return q
}
